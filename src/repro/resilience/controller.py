"""The closed-loop recovery controller.

Detection without reaction is a dashboard.  :class:`RecoveryController`
closes the loop the paper's management plane implies: it watches the
fabric's ground-truth health (link state transitions, degraded effective
capacities) and the monitor's anomaly reports, and per affected placement
picks one of three moves:

* **re-placement** — release and re-admit the intent onto an alternate
  candidate that avoids every dead, quarantined, or degraded link (the
  manager's :meth:`~repro.core.manager.HostNetworkManager.replace` makes
  this atomic: a failed attempt reinstates the original placement);
* **graceful degradation** — when no alternate exists, shrink the
  placement's utilization ceilings proportionally to the surviving
  effective capacity and record a tenant-visible
  :class:`Degradation`, restored bit-for-bit when the fault clears;
* **quarantine** — a link that flaps more than ``flap_threshold`` times
  within ``flap_window`` is quarantined under a hold-down timer:
  placements avoid it even while it is momentarily up, until it stays up
  for ``quarantine_holddown`` seconds.

The controller also flips the arbiter into degradation-aware allocation
(caps computed against *effective* capacity) so enforcement stops
overcommitting silently-degraded links the moment recovery is armed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.manager import HostNetworkManager, Placement
from ..errors import HostNetError
from ..trace.recorder import TRACER
from ..trace.spans import CAT_RECOVERY


@dataclass(frozen=True)
class RecoveryConfig:
    """Tuning knobs for closed-loop recovery.

    Attributes:
        tick_period: Recovery scan period (simulated seconds).  Link-state
            transitions and anomalous monitor reports additionally trigger
            an immediate (same-instant) scan.
        flap_threshold: Link state transitions within ``flap_window`` that
            trigger quarantine.
        flap_window: Sliding window for counting transitions (seconds).
        quarantine_holddown: How long a quarantined link must stay up
            before placements may use it again (seconds).
        degrade_floor: Minimum ceiling factor handed to a degraded
            placement — keeps the record explicit even when the link is
            hard-down (effective capacity 0).
        monitor: Whether :class:`~repro.host.Host` should build a
            :class:`~repro.monitor.monitor.HostMonitor` and subscribe the
            controller to its reports.
        monitor_check_period: Period of the monitor's scheduled checks
            when ``monitor`` is on (seconds).
        retry: Whether :class:`~repro.host.Host` should build an
            :class:`~repro.core.admission.AdmissionRetryQueue` kicked on
            every release.
        retry_max_parked: Bound on the retry queue when ``retry`` is on.
        seed: RNG seed forwarded to monitor probing and retry jitter.
    """

    tick_period: float = 0.002
    flap_threshold: int = 3
    flap_window: float = 0.05
    quarantine_holddown: float = 0.05
    degrade_floor: float = 0.05
    monitor: bool = True
    monitor_check_period: float = 0.005
    retry: bool = True
    retry_max_parked: int = 64
    seed: int = 0


@dataclass(frozen=True)
class RecoveryAction:
    """One recovery decision, for the audit log.

    Attributes:
        kind: ``"replace"``, ``"degrade"``, ``"restore"``,
            ``"quarantine"``, or ``"unquarantine"``.
        time: When it happened (simulated seconds).
        intent_id: Affected intent (placement actions) or ``None``.
        link_id: Affected link (quarantine/degrade actions) or ``None``.
        detail: Human-readable specifics.
    """

    kind: str
    time: float
    intent_id: Optional[str] = None
    link_id: Optional[str] = None
    detail: str = ""


@dataclass
class Degradation:
    """A tenant-visible record of one shrunk guarantee.

    Attributes:
        intent_id: The degraded intent.
        tenant_id: Its owner (so tenants can query their downgrades).
        link_id: The faulty link forcing the downgrade.
        factor: Current ceiling factor (fraction of the intent's healthy
            service level; ``degrade_floor`` means effectively zero).
        started_at: When the downgrade began.
        restored_at: When full service resumed, if it has.
    """

    intent_id: str
    tenant_id: str
    link_id: str
    factor: float
    started_at: float
    restored_at: Optional[float] = None

    @property
    def active(self) -> bool:
        """Whether the downgrade is still in effect."""
        return self.restored_at is None


class RecoveryController:
    """Closed-loop failure recovery over one managed host.

    Args:
        manager: The resource manager whose placements are protected.
        monitor: Optional :class:`~repro.monitor.monitor.HostMonitor`;
            anomalous reports trigger an immediate recovery scan.
        config: Tuning knobs (see :class:`RecoveryConfig`).
    """

    def __init__(
        self,
        manager: HostNetworkManager,
        monitor=None,
        config: Optional[RecoveryConfig] = None,
    ) -> None:
        self.manager = manager
        self.network = manager.network
        self.engine = self.network.engine
        self.config = config or RecoveryConfig()
        self.actions: List[RecoveryAction] = []
        self.ticks = 0
        self._degradations: Dict[Tuple[str, str], Degradation] = {}
        self._transitions: Dict[str, List[float]] = {}
        self._quarantined_until: Dict[str, float] = {}
        self._replace_failed: Dict[str, FrozenSet[str]] = {}
        self._escalation_listeners: List[Callable[[str, List[str]], None]] = []
        self._escalated: Dict[str, FrozenSet[str]] = {}
        self._flows: Dict[str, List[str]] = {}
        self._task = None
        self._tick_pending = False
        self._replacing: Optional[str] = None
        self.network.on_link_state_change(self._on_link_state)
        self.manager.on_release(self._on_release)
        if monitor is not None:
            monitor.on_report(self._on_report)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Arm recovery: periodic scans + degradation-aware arbitration."""
        if self._task is not None:
            return
        self.manager.arbiter.degradation_aware = True
        self._task = self.engine.schedule_every(
            self.config.tick_period, self.tick, label="recovery-tick"
        )

    def stop(self) -> None:
        """Disarm periodic scanning (records and state are kept)."""
        if self._task is not None:
            self._task.cancel()
            self._task = None

    @property
    def running(self) -> bool:
        """Whether periodic scanning is armed."""
        return self._task is not None

    # -- flow binding -------------------------------------------------------

    def bind_flow(self, intent_id: str, flow_id: str) -> None:
        """Tie a live flow to a placement so re-placement reroutes it.

        When *intent_id* is re-placed, every bound flow whose endpoints
        match a path of the new candidate is rerouted in place.
        """
        self._flows.setdefault(intent_id, []).append(flow_id)

    # -- signals ------------------------------------------------------------

    def _on_link_state(self, link_id: str, up: bool) -> None:
        self._transitions.setdefault(link_id, []).append(self.engine.now)
        self._request_tick()

    def _on_report(self, report) -> None:
        if not report.healthy:
            self._request_tick()

    def _on_release(self, intent_id: str) -> None:
        # A released intent's downgrades are moot: lift its ceilings and
        # close the records so they don't read as pending restorations
        # forever.  Skipped mid-replace — the placement is coming back
        # (or being reinstated) and the replace path does its own cleanup.
        if intent_id == self._replacing:
            return
        self._close_degradations(intent_id, reason="intent released")
        self._flows.pop(intent_id, None)
        self._replace_failed.pop(intent_id, None)
        self._escalated.pop(intent_id, None)

    def _request_tick(self) -> None:
        """Schedule one same-instant scan (coalesced) if armed."""
        if self._tick_pending or self._task is None:
            return
        self._tick_pending = True
        self.engine.schedule_now(self._reactive_tick, label="recovery-react")

    def _reactive_tick(self) -> None:
        self._tick_pending = False
        self.tick()

    # -- the control loop ---------------------------------------------------

    def tick(self) -> None:
        """One recovery scan: quarantine, re-place, degrade, restore."""
        if not TRACER.enabled:
            return self._tick_untracked()
        with TRACER.span(CAT_RECOVERY, "tick"):
            self._tick_untracked()

    def _tick_untracked(self) -> None:
        self.ticks += 1
        self._update_quarantine()
        down = {
            link.link_id for link in self.network.topology.links()
            if not link.up
        }
        quarantined = set(self._quarantined_until)
        degraded = {
            link.link_id: link.effective_capacity / link.capacity
            for link in self.network.topology.links()
            if link.up and link.effective_capacity < link.capacity
        }
        avoid = down | quarantined | set(degraded)
        unhealthy = down | quarantined

        for placement in list(self.manager.placements()):
            links = set(placement.links())
            if not links & avoid:
                continue
            if self._try_replace(placement, avoid):
                continue
            self._degrade(placement, links, down | quarantined, degraded)
            self._maybe_escalate(placement, links & unhealthy)

        self._restore_where_healthy(unhealthy, degraded)
        if TRACER.enabled:
            TRACER.counter(CAT_RECOVERY, "recovery.active_degradations",
                           len([d for d in self._degradations.values()
                                if d.active]))
            TRACER.counter(CAT_RECOVERY, "recovery.quarantined_links",
                           len(self._quarantined_until))

    # -- quarantine ---------------------------------------------------------

    def _update_quarantine(self) -> None:
        now = self.engine.now
        horizon = now - self.config.flap_window
        for link_id, times in list(self._transitions.items()):
            recent = [t for t in times if t > horizon]
            if recent:
                self._transitions[link_id] = recent
            else:
                del self._transitions[link_id]
                continue
            if len(recent) >= self.config.flap_threshold:
                until = now + self.config.quarantine_holddown
                newly = link_id not in self._quarantined_until
                if self._quarantined_until.get(link_id, -1.0) < until:
                    self._quarantined_until[link_id] = until
                if newly:
                    self._record("quarantine", link_id=link_id,
                                 detail=f"{len(recent)} transitions in "
                                        f"{self.config.flap_window:.3g}s")
                    if TRACER.enabled:
                        TRACER.instant(CAT_RECOVERY, "quarantine",
                                       {"link": link_id,
                                        "transitions": len(recent)})
        for link_id, until in list(self._quarantined_until.items()):
            if now >= until and self.network.topology.link(link_id).up:
                del self._quarantined_until[link_id]
                self._record("unquarantine", link_id=link_id,
                             detail="hold-down expired, link stable")

    def is_quarantined(self, link_id: str) -> bool:
        """Whether *link_id* is currently held out of placement."""
        return link_id in self._quarantined_until

    def quarantined(self) -> List[str]:
        """Links currently quarantined."""
        return sorted(self._quarantined_until)

    # -- re-placement -------------------------------------------------------

    def _try_replace(self, placement: Placement,
                     avoid: Set[str]) -> bool:
        intent_id = placement.intent.intent_id
        signature = frozenset(avoid)
        if self._replace_failed.get(intent_id) == signature:
            return False  # nothing changed since the last failed attempt
        if not TRACER.enabled:
            return self._try_replace_untracked(placement, avoid, signature)
        with TRACER.span(CAT_RECOVERY, "replace", {
            "intent": intent_id, "avoid": len(avoid),
        }):
            ok = self._try_replace_untracked(placement, avoid, signature)
            TRACER.annotate(outcome="replaced" if ok else "no_alternative")
            return ok

    def _try_replace_untracked(self, placement: Placement,
                               avoid: Set[str],
                               signature: FrozenSet[str]) -> bool:
        intent_id = placement.intent.intent_id
        self._replacing = intent_id
        try:
            new = self.manager.replace(intent_id, avoid_links=avoid)
        except HostNetError:
            self._replace_failed[intent_id] = signature
            return False
        finally:
            self._replacing = None
        self._replace_failed.pop(intent_id, None)
        self._escalated.pop(intent_id, None)
        self._close_degradations(intent_id, reason="replaced")
        self._reroute_flows(intent_id, new)
        self._record("replace", intent_id=intent_id,
                     detail=f"moved onto {new.links()}")
        return True

    # -- fleet escalation ----------------------------------------------------

    def on_escalation(self, listener: Callable[[str, List[str]], None]) -> None:
        """Register a callback for placements local recovery cannot save.

        Fired with ``(intent_id, dead_links)`` when a placement sits on
        hard-unavailable links (down or quarantined), no local alternate
        candidate exists, and graceful degradation has pinned it at the
        degrade floor — i.e. the intent's guarantee cannot be met on this
        host at all.  A fleet-level controller uses this to live-migrate
        the placement to another host; without listeners the hook is inert.
        Each (intent, dead-link-set) pair fires once until the situation
        changes, so listeners are not spammed every recovery tick.
        """
        self._escalation_listeners.append(listener)

    def _maybe_escalate(self, placement: Placement,
                        dead_links: Set[str]) -> None:
        if not self._escalation_listeners or not dead_links:
            return
        intent_id = placement.intent.intent_id
        signature = frozenset(dead_links)
        if self._escalated.get(intent_id) == signature:
            return
        self._escalated[intent_id] = signature
        self._record("escalate", intent_id=intent_id,
                     detail=f"local recovery exhausted on "
                            f"{sorted(dead_links)}")
        if TRACER.enabled:
            TRACER.instant(CAT_RECOVERY, "escalate",
                           {"intent": intent_id,
                            "dead_links": len(dead_links)})
        for listener in self._escalation_listeners:
            listener(intent_id, sorted(dead_links))

    def _reroute_flows(self, intent_id: str, placement: Placement) -> None:
        flow_ids = self._flows.get(intent_id, [])
        surviving: List[str] = []
        for flow_id in flow_ids:
            if not self.network.has_flow(flow_id):
                continue
            flow = self.network.flow(flow_id)
            target = next(
                (p for p in placement.candidate.paths
                 if (p.src, p.dst) == (flow.path.src, flow.path.dst)),
                None,
            )
            if target is not None and target.links != flow.path.links:
                self.network.reroute_flow(flow_id, target)
            surviving.append(flow_id)
        if surviving:
            self._flows[intent_id] = surviving
        else:
            self._flows.pop(intent_id, None)

    # -- graceful degradation ----------------------------------------------

    def _degrade(self, placement: Placement, links: Set[str],
                 unhealthy: Set[str], degraded: Dict[str, float]) -> None:
        if not TRACER.enabled:
            self._degrade_untracked(placement, links, unhealthy, degraded)
            return
        with TRACER.span(CAT_RECOVERY, "degrade", {
            "intent": placement.intent.intent_id,
            "links": len(links & (unhealthy | set(degraded))),
        }):
            changed = self._degrade_untracked(placement, links,
                                              unhealthy, degraded)
            TRACER.annotate(changed=changed)

    def _degrade_untracked(self, placement: Placement, links: Set[str],
                           unhealthy: Set[str],
                           degraded: Dict[str, float]) -> bool:
        intent_id = placement.intent.intent_id
        tenant_id = placement.intent.tenant_id
        now = self.engine.now
        changed = False
        for link_id in sorted(links):
            if link_id in unhealthy:
                factor = self.config.degrade_floor
            elif link_id in degraded:
                factor = max(degraded[link_id], self.config.degrade_floor)
            else:
                continue
            factor = min(factor, 1.0)
            key = (intent_id, link_id)
            record = self._degradations.get(key)
            if record is not None and record.active:
                if abs(record.factor - factor) > 1e-9:
                    record.factor = factor
                    changed = True
            else:
                self._degradations[key] = Degradation(
                    intent_id=intent_id, tenant_id=tenant_id,
                    link_id=link_id, factor=factor, started_at=now,
                )
                changed = True
            self.manager.arbiter.set_utilization_ceiling(
                f"degrade:{intent_id}", link_id, factor
            )
        if changed:
            self._record("degrade", intent_id=intent_id,
                         detail=f"ceilings shrunk on "
                                f"{sorted(links & (unhealthy | set(degraded)))}")
            self.manager.arbiter.adjust_once()
        return changed

    def _restore_where_healthy(self, unhealthy: Set[str],
                               degraded: Dict[str, float]) -> None:
        now = self.engine.now
        for (intent_id, link_id), record in list(self._degradations.items()):
            if not record.active:
                continue
            if link_id in unhealthy or link_id in degraded:
                continue
            self.manager.arbiter.clear_utilization_ceiling(
                f"degrade:{intent_id}", link_id
            )
            record.restored_at = now
            self._record("restore", intent_id=intent_id, link_id=link_id,
                         detail="link healthy again, full service restored")

    def _close_degradations(self, intent_id: str, reason: str) -> None:
        """End every active downgrade of *intent_id* (it moved away)."""
        now = self.engine.now
        for record in self._iter_degradations(intent_id):
            self.manager.arbiter.clear_utilization_ceiling(
                f"degrade:{intent_id}", record.link_id
            )
            record.restored_at = now
            self._record("restore", intent_id=intent_id,
                         link_id=record.link_id, detail=reason)

    def _iter_degradations(self, intent_id: str) -> List[Degradation]:
        return [
            record for (iid, _link), record in self._degradations.items()
            if iid == intent_id and record.active
        ]

    # -- latency SLO sink ----------------------------------------------------

    def handle_latency_alert(self, alert, max_actions: int = 2) -> int:
        """React to a burn-rate alert from this host's latency probe.

        The host-local half of the §16 SLO closed loop (the fleet-level
        half is :meth:`~repro.fleet.migration.MigrationPlanner
        .relieve_latency`): walk the placement ledger and re-place
        sessions off their current — hot — paths onto alternate
        candidates; where no alternate exists, fall back to graceful
        degradation, shrinking utilization ceilings on the hot links so
        queueing inflation stays bounded (the ceilings clear through the
        normal restore path once the links read healthy).  *alert* is an
        :class:`~repro.slo.objective.SloAlert`; only fast-window alerts
        act — slow-window alerts are recorded for the audit trail only.
        ``max_actions`` bounds the work per alert (the probe's alert
        cooldown bounds the rate).  Returns the number of sessions
        re-placed.
        """
        self._record(
            "latency",
            detail=f"{alert.objective}: {alert.window}-window burn "
                   f"{alert.burn_long:.1f}x over threshold "
                   f"{alert.threshold:g}x")
        if alert.window != "fast":
            return 0
        moved = 0
        actions = 0
        for placement in list(self.manager.placements()):
            if actions >= max_actions:
                break
            links = set(placement.links())
            if self._try_replace(placement, links):
                moved += 1
                actions += 1
                continue
            self._degrade(placement, links, set(),
                          {link: self.config.degrade_floor
                           for link in links})
            actions += 1
        return moved

    # -- queries ------------------------------------------------------------

    def degradations(self, tenant_id: Optional[str] = None,
                     active_only: bool = False) -> List[Degradation]:
        """Downgrade records, optionally one tenant's / only active ones."""
        records = list(self._degradations.values())
        if tenant_id is not None:
            records = [r for r in records if r.tenant_id == tenant_id]
        if active_only:
            records = [r for r in records if r.active]
        return records

    def actions_of(self, kind: str) -> List[RecoveryAction]:
        """Recovery actions of one kind, in order."""
        return [a for a in self.actions if a.kind == kind]

    def _record(self, kind: str, intent_id: Optional[str] = None,
                link_id: Optional[str] = None, detail: str = "") -> None:
        self.actions.append(RecoveryAction(
            kind=kind, time=self.engine.now,
            intent_id=intent_id, link_id=link_id, detail=detail,
        ))

    def describe(self) -> str:
        """Human-readable recovery state summary."""
        active = [d for d in self._degradations.values() if d.active]
        lines = [
            f"RecoveryController: {self.ticks} ticks, "
            f"{len(self.actions)} actions, "
            f"{len(self._quarantined_until)} quarantined links, "
            f"{len(active)} active degradations"
        ]
        for link_id in self.quarantined():
            lines.append(f"  quarantined: {link_id} until "
                         f"{self._quarantined_until[link_id]:.6f}s")
        for record in active:
            lines.append(
                f"  degraded: {record.intent_id} on {record.link_id} "
                f"factor={record.factor:.2f} since {record.started_at:.6f}s"
            )
        return "\n".join(lines)
