"""Closed-loop failure recovery (detection -> reaction).

The monitoring subsystem (:mod:`repro.monitor`) answers *what broke*;
this package answers *what to do about it*:

* :class:`RecoveryController` — per affected placement: re-place onto an
  alternate path, gracefully degrade (tenant-visible, restored on
  repair), or quarantine flapping links under hold-down timers;
* :class:`~repro.core.admission.AdmissionRetryQueue` (re-exported here) —
  park intents that fail under transient pressure and re-admit them with
  backoff or on the first release;
* :mod:`repro.resilience.chaos` — seeded randomized fault campaigns with
  an invariant oracle (:mod:`repro.resilience.invariants`).

Enable the whole loop with ``Host(topology, resilience=True)``.
"""

from ..core.admission import AdmissionRetryQueue, ParkedIntent, ShedRecord
from .chaos import ChaosConfig, ChaosEvent, ChaosReport, run_campaign
from .controller import (
    Degradation,
    RecoveryAction,
    RecoveryConfig,
    RecoveryController,
)
from .invariants import (
    InvariantViolation,
    check_invariants,
    diff_snapshots,
    snapshot_fabric,
)

__all__ = [
    "AdmissionRetryQueue",
    "ChaosConfig",
    "ChaosEvent",
    "ChaosReport",
    "Degradation",
    "InvariantViolation",
    "ParkedIntent",
    "RecoveryAction",
    "RecoveryConfig",
    "RecoveryController",
    "ShedRecord",
    "check_invariants",
    "diff_snapshots",
    "run_campaign",
    "snapshot_fabric",
]
