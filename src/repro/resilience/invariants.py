"""Safety invariants checked between chaos events.

A chaos campaign is only as good as its oracle.  These checks encode what
"the fabric survived" means, independent of any particular fault sequence:

1. **no traffic over down links** — the fluid solver must starve every
   flow whose path crosses a down link;
2. **no stranded placements** — every placement touching a down or
   quarantined link is either already re-placed (so it no longer touches
   one) or carries an explicit, tenant-visible
   :class:`~repro.resilience.controller.Degradation`;
3. **bandwidth conservation** — per directed link, the summed flow rates
   never exceed the link's *effective* capacity;
4. **floor protection** — the arbiter's last allocation round granted
   every guaranteed tenant at least its floor (clamped to what the link
   can physically carry);
5. **ledger consistency** — reservations and placements agree (every
   placement's demands are in the ledger, nothing reserved for ghosts).

:func:`snapshot_fabric` / :func:`diff_snapshots` add the restore oracle:
after every fault is repaired, link attributes must be *bit-exact* equal
to the pre-campaign baseline — not approximately, exactly, because repair
paths that drift (a forgotten ``extra_latency``, a factor re-applied
twice) poison every later measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.network import FabricNetwork

#: Rate slack for conservation checks (bytes/s) — the solver is float math.
_RATE_TOL = 1e-6


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant.

    Attributes:
        name: Which invariant (e.g. ``"flow-over-down-link"``).
        detail: What exactly was observed.
        time: Simulated time of the check.
    """

    name: str
    detail: str
    time: float

    def __str__(self) -> str:
        return f"[{self.name}] @ {self.time:.6f}s: {self.detail}"


def check_invariants(
    network: FabricNetwork,
    manager=None,
    controller=None,
    rate_tol: float = _RATE_TOL,
) -> List[InvariantViolation]:
    """Run every applicable invariant; return the violations (empty = ok).

    Args:
        network: The fabric to audit.
        manager: Optional :class:`~repro.core.manager.HostNetworkManager`
            — enables the placement/floor/ledger checks.
        controller: Optional
            :class:`~repro.resilience.controller.RecoveryController` —
            enables the stranded-placement check (it knows quarantines
            and degradation records).
        rate_tol: Absolute slack for rate comparisons (bytes/s).
    """
    now = network.engine.now
    violations: List[InvariantViolation] = []

    def fail(name: str, detail: str) -> None:
        violations.append(InvariantViolation(name=name, detail=detail,
                                             time=now))

    down = {link.link_id for link in network.topology.links()
            if not link.up}

    # 1. No traffic over down links.
    network.flush_recompute()
    for flow in network.active_flows():
        dead = [l for l in flow.path.links if l in down]
        if dead and flow.current_rate > rate_tol:
            fail("flow-over-down-link",
                 f"flow {flow.flow_id!r} carries "
                 f"{flow.current_rate:.4g} B/s across down link(s) {dead}")

    # 3. Bandwidth conservation per directed link.
    for link in network.topology.links():
        for direction in ("fwd", "rev"):
            rate = network.link_rate(link.link_id, direction)
            if rate > link.effective_capacity + rate_tol:
                fail("bandwidth-conservation",
                     f"link {link.link_id!r}/{direction} carries "
                     f"{rate:.6g} B/s > effective capacity "
                     f"{link.effective_capacity:.6g} B/s")

    if manager is not None:
        # 2. No stranded placements.
        bad = set(down)
        if controller is not None:
            bad |= set(controller.quarantined())
        for placement in manager.placements():
            intent_id = placement.intent.intent_id
            hit = sorted(set(placement.links()) & bad)
            if not hit:
                continue
            if controller is None:
                fail("stranded-placement",
                     f"intent {intent_id!r} is placed over unusable "
                     f"link(s) {hit} and no recovery controller is armed")
                continue
            covered = {
                d.link_id for d in controller.degradations(active_only=True)
                if d.intent_id == intent_id
            }
            missing = [l for l in hit if l not in covered]
            if missing:
                fail("stranded-placement",
                     f"intent {intent_id!r} sits on unusable link(s) "
                     f"{missing} with no re-placement and no explicit "
                     f"degradation record")

        # 4. Floor protection in the last arbitration round.
        for allocation in manager.arbiter.last_allocations:
            for tenant, floor in allocation.floors.items():
                cap = allocation.caps.get(tenant, 0.0)
                entitled = min(floor, allocation.capacity)
                if cap + rate_tol < entitled:
                    fail("floor-protection",
                         f"{allocation.link_id}: tenant {tenant!r} capped "
                         f"at {cap:.6g} B/s below its floor "
                         f"{entitled:.6g} B/s")

        # 5. Ledger / placement consistency.
        expected: Dict[Tuple[str, str], float] = {}
        for placement in manager.placements():
            for demand in placement.candidate.demands:
                key = (demand.link_id, demand.direction)
                expected[key] = expected.get(key, 0.0) + demand.bandwidth
        for link in network.topology.links():
            for direction in ("fwd", "rev"):
                reserved = manager.ledger.reserved(link.link_id, direction)
                want = expected.get((link.link_id, direction), 0.0)
                if abs(reserved - want) > rate_tol:
                    fail("ledger-consistency",
                         f"link {link.link_id!r}/{direction}: ledger says "
                         f"{reserved:.6g} B/s reserved, placements sum to "
                         f"{want:.6g} B/s")

    return violations


# --------------------------------------------------------------------------
# The restore oracle.
# --------------------------------------------------------------------------


def snapshot_fabric(network: FabricNetwork) -> Dict[str, tuple]:
    """Capture every link's health-relevant attributes, exactly.

    The tuple is compared with ``==`` (no tolerance): repairing every
    failure must restore these *bit-exact* or repair paths are drifting.
    """
    return {
        link.link_id: (
            link.capacity,
            link.degraded_capacity,
            link.extra_latency,
            link.up,
            link.base_latency,
        )
        for link in network.topology.links()
    }


def diff_snapshots(
    baseline: Dict[str, tuple],
    current: Dict[str, tuple],
) -> List[str]:
    """Human-readable differences between two fabric snapshots."""
    fields = ("capacity", "degraded_capacity", "extra_latency", "up",
              "base_latency")
    diffs: List[str] = []
    for link_id in sorted(set(baseline) | set(current)):
        before = baseline.get(link_id)
        after = current.get(link_id)
        if before == after:
            continue
        if before is None or after is None:
            diffs.append(f"{link_id}: present only "
                         f"{'before' if after is None else 'after'}")
            continue
        for name, b, a in zip(fields, before, after):
            if b != a:
                diffs.append(f"{link_id}.{name}: {b!r} -> {a!r}")
    return diffs
