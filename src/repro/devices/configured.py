"""Apply a :class:`HostConfig` to a simulated host.

Figure 1's dashed box — DDIO, IOMMU, ordering, payload sizes, interrupt
moderation, NUMA policy — "heavily impact the performance of intra-host
connections".  :func:`build_configured_host` folds a configuration's
effects into a concrete fabric so they are *measurable* (and therefore
diagnosable, E13) rather than declared:

* PCIe link capacities scale by the config's protocol efficiency
  (payload size, ordering, IOMMU per-TLP tax);
* PCIe downstream links gain the config's small-op latency penalty
  (interrupt moderation, IOTLB hits, ACS detours);
* inbound DMA lands on the socket-local or remote DIMM group per the NUMA
  policy (remote placement drags every transfer across UPI);
* the DDIO setting selects the LLC model used for memory-amplification
  accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.engine import Engine
from ..sim.network import FabricNetwork
from ..topology.elements import DeviceType, LinkClass
from ..topology.graph import HostTopology
from .cache import DdioCache
from .config import HostConfig, NumaPolicy
from .pcie import tlp_efficiency


@dataclass
class ConfiguredHost:
    """A fabric with a host configuration's effects baked in.

    Attributes:
        config: The applied configuration.
        network: The live fabric (topology already adjusted).
        ddio: The LLC model matching the config.
    """

    config: HostConfig
    network: FabricNetwork
    ddio: DdioCache

    def dma_target_dimm(self, device_id: str) -> str:
        """The DIMM group a device's DMA lands on under this config.

        LOCAL pins to the device's socket; REMOTE to the other socket
        (the classic placement bug); INTERLEAVE alternates but for
        path purposes resolves to the remote group (worst-path member).
        """
        topology = self.network.topology
        socket = topology.socket_of(device_id)
        dimms = topology.devices(DeviceType.DIMM)
        if not dimms:
            raise ValueError("topology has no DIMM groups")
        local = [d for d in dimms if d.socket == socket]
        remote = [d for d in dimms if d.socket != socket]
        if self.config.numa_policy is NumaPolicy.LOCAL or not remote:
            pool = local or dimms
        elif self.config.numa_policy is NumaPolicy.REMOTE:
            pool = remote
        else:  # INTERLEAVE: half the traffic crosses sockets
            pool = remote
        return pool[0].device_id

    def membus_amplification(self) -> float:
        """Memory-bus bytes per inbound DMA byte under this config."""
        return self.config.membus_amplification()


def build_configured_host(
    topology: HostTopology,
    config: HostConfig,
    engine: Optional[Engine] = None,
) -> ConfiguredHost:
    """Build a :class:`ConfiguredHost` over a copy of *topology*.

    The input topology is not mutated; capacities and latencies on the
    copy reflect the configuration.
    """
    adjusted = topology.copy()
    efficiency = config.pcie_efficiency_factor() * tlp_efficiency(
        config.max_payload_size, config.max_payload_size
    ) / tlp_efficiency(256, 256)
    penalty = config.small_op_latency_penalty()
    for link in adjusted.links():
        if link.link_class in (LinkClass.PCIE_UPSTREAM,
                               LinkClass.PCIE_DOWNSTREAM):
            link.capacity = link.capacity * min(efficiency, 1.0)
            link.base_latency = link.base_latency + penalty
    network = FabricNetwork(adjusted, engine or Engine())
    ddio = DdioCache(ways=config.ddio_ways, enabled=config.ddio_enabled)
    return ConfiguredHost(config=config, network=network, ddio=ddio)
