"""LLC / DDIO occupancy model — the cache-thrashing mechanism of §2.

Intel DDIO lets I/O devices DMA directly into a small number of dedicated
last-level-cache ways.  When the aggregate inbound write rate outpaces what
applications consume before eviction, lines spill to DRAM and are re-read
later — *cache thrashing* — converting PCIe bandwidth into extra memory-bus
bandwidth.  The paper (and Lamda [37], Farshin'20 [17]) describe exactly
this effect; we reproduce it with a steady-state residency model:

* the I/O ways hold ``capacity = ways x way_size`` bytes;
* inbound DMA at rate ``W`` gives a line an expected cache residency of
  ``capacity / W`` seconds before it is evicted by newer arrivals;
* the application consumes a line ``consume_delay`` seconds after arrival;
* a line is a *hit* iff it is consumed before eviction, so the steady-state
  hit rate is ``min(1, capacity / (W * consume_delay))``;
* every missed byte costs two memory-bus transfers (write-back + re-read).

This yields the characteristic knee: below ``capacity / consume_delay``
bytes/s of inbound I/O there is no thrashing at all; above it, extra
memory-bus traffic grows linearly with the overload (E3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import mib


@dataclass(frozen=True)
class DdioReport:
    """Steady-state outcome of the DDIO occupancy model.

    Attributes:
        hit_rate: Fraction of inbound bytes consumed from the LLC in [0, 1].
        spill_rate: Bytes/s of inbound DMA evicted to DRAM before use.
        membus_extra_rate: Extra memory-bus bytes/s caused by thrashing
            (write-back plus the application's DRAM re-read).
        residency: Expected seconds a line stays cached before eviction.
    """

    hit_rate: float
    spill_rate: float
    membus_extra_rate: float
    residency: float


@dataclass
class DdioCache:
    """The dedicated LLC I/O ways of one CPU socket.

    Attributes:
        ways: Number of LLC ways dedicated to I/O (Intel default: 2).
        way_size: Bytes per way (a 1.375 MiB/way Skylake-derivative default).
        enabled: When ``False``, every inbound byte goes straight to DRAM
            (hit rate 0) — the DDIO-off configuration.
    """

    ways: int = 2
    way_size: float = mib(1.5)
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.ways < 1:
            raise ValueError(f"ways must be >= 1, got {self.ways}")
        if self.way_size <= 0:
            raise ValueError(f"way_size must be > 0, got {self.way_size}")

    @property
    def capacity(self) -> float:
        """Total I/O-way capacity in bytes."""
        return self.ways * self.way_size

    def thrash_threshold(self, consume_delay: float) -> float:
        """Inbound rate (bytes/s) above which thrashing begins.

        Below this rate every line survives until the application reads it.
        """
        if consume_delay <= 0:
            return float("inf")
        return self.capacity / consume_delay

    def steady_state(self, io_write_rate: float,
                     consume_delay: float) -> DdioReport:
        """Evaluate the model for an aggregate inbound DMA rate.

        Args:
            io_write_rate: Total inbound device-write rate (bytes/s).
            consume_delay: Mean time (seconds) between a byte landing in
                the cache and the application reading it.
        """
        if io_write_rate < 0:
            raise ValueError("io_write_rate must be >= 0")
        if consume_delay < 0:
            raise ValueError("consume_delay must be >= 0")
        if io_write_rate == 0:
            return DdioReport(hit_rate=1.0, spill_rate=0.0,
                              membus_extra_rate=0.0, residency=float("inf"))
        if not self.enabled:
            # All inbound data goes to DRAM and is read back once.
            return DdioReport(
                hit_rate=0.0,
                spill_rate=io_write_rate,
                membus_extra_rate=2.0 * io_write_rate,
                residency=0.0,
            )
        residency = self.capacity / io_write_rate
        if consume_delay <= 0:
            hit_rate = 1.0
        else:
            hit_rate = min(1.0, residency / consume_delay)
        spill = io_write_rate * (1.0 - hit_rate)
        return DdioReport(
            hit_rate=hit_rate,
            spill_rate=spill,
            membus_extra_rate=2.0 * spill,
            residency=residency,
        )


@dataclass
class DeviceCache:
    """A generic on-device cache (RDMA NIC ICM, NVMe controller DRAM...).

    A working-set miss model: with ``entries`` cacheable objects and a
    working set of ``active`` objects accessed uniformly, the steady-state
    miss rate is ``max(0, 1 - entries / active)``.  The same shape the NIC
    connection-cache literature reports (Kong'23 [32]): flat until the
    working set exceeds the cache, then rising misses.
    """

    entries: int
    miss_penalty: float = 0.0  # seconds added per miss
    miss_extra_bytes: float = 0.0  # extra fabric bytes fetched per miss

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ValueError(f"entries must be >= 1, got {self.entries}")
        if self.miss_penalty < 0 or self.miss_extra_bytes < 0:
            raise ValueError("miss costs must be >= 0")

    def miss_rate(self, active: int) -> float:
        """Steady-state miss probability for a working set of *active*."""
        if active < 0:
            raise ValueError(f"active must be >= 0, got {active}")
        if active <= self.entries:
            return 0.0
        return 1.0 - self.entries / active

    def expected_penalty(self, active: int) -> float:
        """Expected per-access latency penalty (seconds)."""
        return self.miss_rate(active) * self.miss_penalty

    def expected_extra_bytes(self, active: int) -> float:
        """Expected extra fabric bytes per access."""
        return self.miss_rate(active) * self.miss_extra_bytes
