"""Behavioural device models layered on topology nodes."""

from .cache import DdioCache, DdioReport, DeviceCache
from .config import (
    MISCONFIGURATIONS,
    RECOMMENDED_CONFIG,
    HostConfig,
    NumaPolicy,
)
from .configured import ConfiguredHost, build_configured_host
from .endpoints import (
    CpuModel,
    CxlDeviceModel,
    GpuModel,
    MemoryModel,
    NvmeModel,
)
from .iommu import IommuModel
from .nic import RdmaNicModel
from .pcie import (
    DLLP_TAX,
    TLP_OVERHEAD_BYTES,
    PcieSwitchModel,
    effective_pcie_bandwidth,
    tlp_efficiency,
)

__all__ = [
    "HostConfig",
    "NumaPolicy",
    "RECOMMENDED_CONFIG",
    "MISCONFIGURATIONS",
    "DdioCache",
    "DdioReport",
    "DeviceCache",
    "ConfiguredHost",
    "build_configured_host",
    "RdmaNicModel",
    "IommuModel",
    "PcieSwitchModel",
    "tlp_efficiency",
    "effective_pcie_bandwidth",
    "TLP_OVERHEAD_BYTES",
    "DLLP_TAX",
    "CpuModel",
    "MemoryModel",
    "GpuModel",
    "NvmeModel",
    "CxlDeviceModel",
]
