"""PCIe protocol model: TLP efficiency, switches, and failure modes.

Follows the analytic model of Neugebauer et al. (SIGCOMM'18, cited as [43]):
the usable fraction of a PCIe link's raw bandwidth is the payload divided by
payload plus per-TLP header/framing overhead, so small DMA transactions get
markedly less than the advertised x16 number.  PCIe switches add processing
latency and, per the paper's §3.1 motivating case, can *silently* degrade —
that failure mode is first-class here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..units import ns

#: Per-TLP overhead in bytes: 2B framing + 6B DLL + 12B TLP header + 4B LCRC.
TLP_OVERHEAD_BYTES = 24

#: DLLP (ack/flow-control) tax as a fraction of raw bandwidth.
DLLP_TAX = 0.05


def tlp_efficiency(payload_size: int, max_payload_size: int = 256) -> float:
    """Fraction of raw PCIe bandwidth usable for *payload_size*-byte DMA.

    A transfer is split into TLPs of at most *max_payload_size* bytes; each
    TLP pays :data:`TLP_OVERHEAD_BYTES` of header/framing plus the DLLP tax.

    >>> round(tlp_efficiency(256, 256), 3)
    0.868
    """
    if payload_size <= 0:
        raise ValueError(f"payload_size must be > 0, got {payload_size}")
    if max_payload_size <= 0:
        raise ValueError(f"max_payload_size must be > 0, got {max_payload_size}")
    chunk = min(payload_size, max_payload_size)
    per_tlp = chunk / (chunk + TLP_OVERHEAD_BYTES)
    return per_tlp * (1.0 - DLLP_TAX)


def effective_pcie_bandwidth(
    raw_capacity: float,
    payload_size: int,
    max_payload_size: int = 256,
    config_factor: float = 1.0,
) -> float:
    """Usable bandwidth (bytes/s) of a PCIe link for a given DMA size.

    *config_factor* folds in host-configuration penalties (see
    :meth:`~repro.devices.config.HostConfig.pcie_efficiency_factor`).
    """
    return raw_capacity * tlp_efficiency(payload_size, max_payload_size) \
        * config_factor


@dataclass
class PcieSwitchModel:
    """Behavioural model of a PCIe switch.

    Attributes:
        switch_id: The topology device id this model describes.
        port_count: Number of downstream ports.
        forwarding_latency: Store-and-forward processing delay (seconds).
        failed: When set, the switch silently degrades: forwarded traffic
            sees ``degrade_factor`` of link capacity and extra latency.
            This models §3.1's "hardware failure occurring on the PCIe
            switch may silently cause the connected PCIe device to suffer
            performance degradation".
        degrade_factor: Remaining capacity fraction while failed.
        degrade_extra_latency: Additional forwarding latency while failed.
    """

    switch_id: str
    port_count: int = 4
    forwarding_latency: float = ns(70)
    failed: bool = False
    degrade_factor: float = 0.25
    degrade_extra_latency: float = ns(400)

    def __post_init__(self) -> None:
        if self.port_count < 1:
            raise ValueError("port_count must be >= 1")
        if not 0 < self.degrade_factor <= 1:
            raise ValueError("degrade_factor must be in (0, 1]")

    @property
    def effective_latency(self) -> float:
        """Current forwarding latency, including failure penalty."""
        if self.failed:
            return self.forwarding_latency + self.degrade_extra_latency
        return self.forwarding_latency

    def capacity_factor(self) -> float:
        """Multiplier on attached link capacities (1.0 when healthy)."""
        return self.degrade_factor if self.failed else 1.0

    def inject_failure(self, degrade_factor: Optional[float] = None) -> None:
        """Silently degrade the switch (no error is surfaced anywhere)."""
        if degrade_factor is not None:
            if not 0 < degrade_factor <= 1:
                raise ValueError("degrade_factor must be in (0, 1]")
            self.degrade_factor = degrade_factor
        self.failed = True

    def repair(self) -> None:
        """Restore the switch to healthy operation."""
        self.failed = False
