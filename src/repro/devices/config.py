"""The host configuration space (Figure 1's dashed box).

The paper stresses that intra-host performance depends heavily on a large
space of per-host configurations — NUMA policy, IOMMU, DDIO, request sizes,
ordering restrictions, access-control services, interrupt moderation.  This
module gives that space a concrete, validated shape, and quantifies how each
knob perturbs the fabric (latency multipliers, efficiency factors, extra
memory-bus traffic) so monitoring can *detect misconfiguration* (E4) and
benchmarks can sweep the space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List

from ..units import ns, us


class NumaPolicy(enum.Enum):
    """Where a device's DMA memory lands relative to its socket."""

    LOCAL = "local"  # pinned to the device's socket (correct)
    REMOTE = "remote"  # pinned to the other socket (misconfiguration)
    INTERLEAVE = "interleave"  # striped across sockets


@dataclass(frozen=True)
class HostConfig:
    """One point in the host configuration space.

    Attributes:
        ddio_enabled: Whether inbound DMA targets the LLC I/O ways
            (Intel DDIO).  Disabled, every inbound byte crosses the memory
            bus twice (write + application read).
        ddio_ways: Number of LLC ways dedicated to I/O when DDIO is on.
        iommu_enabled: Whether DMA addresses are translated by the IOMMU
            (adds per-transaction translation latency; misses are costly).
        relaxed_ordering: PCIe relaxed ordering; disabled, the effective
            PCIe efficiency drops because completions serialize.
        max_payload_size: PCIe max payload size in bytes (128..4096).
        interrupt_moderation: Interrupt coalescing delay in seconds; adds
            directly to small-operation latency, saves CPU at high rates.
        acs_enabled: PCIe Access Control Services; forces peer-to-peer
            traffic up through the root complex (longer paths).
        numa_policy: DMA buffer placement policy.
    """

    ddio_enabled: bool = True
    ddio_ways: int = 2
    iommu_enabled: bool = False
    relaxed_ordering: bool = True
    max_payload_size: int = 256
    interrupt_moderation: float = 0.0
    acs_enabled: bool = False
    numa_policy: NumaPolicy = NumaPolicy.LOCAL

    _VALID_PAYLOADS = (128, 256, 512, 1024, 2048, 4096)

    def __post_init__(self) -> None:
        if self.max_payload_size not in self._VALID_PAYLOADS:
            raise ValueError(
                f"max_payload_size must be one of {self._VALID_PAYLOADS}, "
                f"got {self.max_payload_size}"
            )
        if not 1 <= self.ddio_ways <= 11:
            raise ValueError(f"ddio_ways must be in [1, 11], got {self.ddio_ways}")
        if self.interrupt_moderation < 0:
            raise ValueError("interrupt_moderation must be >= 0")

    def with_changes(self, **changes: object) -> "HostConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # -- effects on the fabric ---------------------------------------------

    def small_op_latency_penalty(self) -> float:
        """Extra one-way latency (seconds) this config adds to small ops."""
        penalty = self.interrupt_moderation
        if self.iommu_enabled:
            penalty += ns(60)  # IOTLB-hit translation cost
        if self.acs_enabled:
            penalty += ns(90)  # forced root-complex round trip for P2P
        return penalty

    def pcie_efficiency_factor(self) -> float:
        """Multiplier (<= 1) on PCIe effective bandwidth from ordering knobs."""
        factor = 1.0
        if not self.relaxed_ordering:
            factor *= 0.85  # strict ordering stalls the completion pipeline
        if self.iommu_enabled:
            factor *= 0.95  # translation adds per-TLP overhead
        return factor

    def membus_amplification(self) -> float:
        """How many memory-bus bytes one inbound DMA byte costs.

        With DDIO, data lands in the LLC and may be consumed before spilling
        (the cache model refines this); without it, every byte is written to
        DRAM and read back by the application.
        """
        return 1.0 if self.ddio_enabled else 2.0

    def describe_differences(self, baseline: "HostConfig") -> List[str]:
        """Human-readable list of fields where self differs from *baseline*."""
        diffs = []
        for name in self.__dataclass_fields__:
            mine = getattr(self, name)
            theirs = getattr(baseline, name)
            if mine != theirs:
                diffs.append(f"{name}: {theirs!r} -> {mine!r}")
        return diffs


#: The sane default configuration a well-run host ships with.
RECOMMENDED_CONFIG = HostConfig()

#: Known-bad configurations used by failure-injection experiments (E4).
MISCONFIGURATIONS: Dict[str, HostConfig] = {
    "remote_numa": RECOMMENDED_CONFIG.with_changes(numa_policy=NumaPolicy.REMOTE),
    "ddio_off": RECOMMENDED_CONFIG.with_changes(ddio_enabled=False),
    "strict_ordering": RECOMMENDED_CONFIG.with_changes(relaxed_ordering=False),
    "tiny_payload": RECOMMENDED_CONFIG.with_changes(max_payload_size=128),
    "heavy_moderation": RECOMMENDED_CONFIG.with_changes(
        interrupt_moderation=us(50)
    ),
}
