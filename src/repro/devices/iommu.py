"""IOMMU / IOTLB model.

Agarwal et al. (HotNets'22, the paper's [2]) show the IOMMU is a first-order
intra-host bottleneck: every DMA is address-translated, the IOTLB is small,
and misses trigger multi-level page-walks over the memory bus.  We model the
IOTLB with the same working-set miss model as other device caches and expose
both the latency tax and the extra memory-bus traffic of page walks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import kib, ns


@dataclass
class IommuModel:
    """Translation model for one IOMMU.

    Attributes:
        iotlb_entries: IOTLB capacity in translations.
        page_size: Bytes covered by one translation.
        hit_latency: Translation latency on an IOTLB hit (seconds).
        miss_latency: Page-walk latency on a miss (seconds).
        walk_bytes: Memory-bus bytes one page walk reads (PTE fetches).
        enabled: Disabled IOMMUs translate for free (pass-through).
    """

    iotlb_entries: int = 256
    page_size: float = kib(4)
    hit_latency: float = ns(30)
    miss_latency: float = ns(900)
    walk_bytes: float = 4 * 64.0  # four cache-line PTE reads
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.iotlb_entries < 1:
            raise ValueError("iotlb_entries must be >= 1")
        if self.page_size <= 0:
            raise ValueError("page_size must be > 0")

    def working_set_pages(self, buffer_bytes: float) -> int:
        """Number of translations a DMA buffer of *buffer_bytes* needs."""
        if buffer_bytes < 0:
            raise ValueError("buffer_bytes must be >= 0")
        return max(1, int(-(-buffer_bytes // self.page_size)))

    def miss_rate(self, buffer_bytes: float) -> float:
        """Steady-state IOTLB miss probability for a DMA working set."""
        if not self.enabled:
            return 0.0
        pages = self.working_set_pages(buffer_bytes)
        if pages <= self.iotlb_entries:
            return 0.0
        return 1.0 - self.iotlb_entries / pages

    def translation_latency(self, buffer_bytes: float) -> float:
        """Expected per-transaction translation latency (seconds)."""
        if not self.enabled:
            return 0.0
        miss = self.miss_rate(buffer_bytes)
        return (1.0 - miss) * self.hit_latency + miss * self.miss_latency

    def walk_traffic(self, transaction_rate: float,
                     buffer_bytes: float) -> float:
        """Memory-bus bytes/s of page walks at *transaction_rate* tx/s."""
        if transaction_rate < 0:
            raise ValueError("transaction_rate must be >= 0")
        return transaction_rate * self.miss_rate(buffer_bytes) * self.walk_bytes
