"""RDMA NIC model: message-rate limits and the connection-state cache.

Reproduces the microarchitectural behaviour Kong et al. measured (NSDI'23,
the paper's [32]): an RNIC caches per-connection state (QP context, MTT
entries) on chip; once the number of *active* connections exceeds the cache,
every miss forces a PCIe read of host memory, simultaneously adding latency
and stealing PCIe bandwidth from payload DMA.  The visible symptom is a
throughput cliff as connection count crosses cache capacity (E12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import Gbps, kib, ns, us
from .cache import DeviceCache


@dataclass
class RdmaNicModel:
    """Behavioural model of one RDMA NIC.

    Attributes:
        nic_id: Topology device id.
        line_rate: Port speed in bytes/s.
        max_message_rate: Messages/s the processing pipeline sustains
            (binds small-message throughput before bandwidth does).
        base_latency: NIC processing latency per message (seconds).
        connection_cache: On-chip connection-state cache model.
        context_fetch_bytes: Host-memory bytes fetched on a cache miss.
    """

    nic_id: str
    line_rate: float = Gbps(200)
    max_message_rate: float = 100e6
    base_latency: float = ns(600)
    connection_cache: DeviceCache = field(
        default_factory=lambda: DeviceCache(
            entries=1024, miss_penalty=us(1.5), miss_extra_bytes=kib(4)
        )
    )
    context_fetch_bytes: float = kib(4)

    def __post_init__(self) -> None:
        if self.line_rate <= 0 or self.max_message_rate <= 0:
            raise ValueError("line_rate and max_message_rate must be > 0")

    def message_latency(self, active_connections: int) -> float:
        """Per-message NIC latency, including expected cache-miss stalls."""
        return self.base_latency + self.connection_cache.expected_penalty(
            active_connections
        )

    def goodput(self, message_size: float, active_connections: int,
                pcie_capacity: float) -> float:
        """Achievable application goodput (bytes/s).

        Binds the NIC by, in order: the message-rate pipeline, the wire
        rate, and the PCIe budget after subtracting cache-miss context
        fetches.  *pcie_capacity* is the usable PCIe bandwidth toward host
        memory for this NIC.

        The shape this produces is the measured one: flat at
        ``min(line rate, message-rate x size, PCIe)`` while connections fit
        in cache, then degrading as misses tax both the pipeline and PCIe.
        """
        if message_size <= 0:
            raise ValueError("message_size must be > 0")
        miss_rate = self.connection_cache.miss_rate(active_connections)

        # Pipeline bound: each miss stalls the pipeline for the fetch.
        per_message = 1.0 / self.max_message_rate + miss_rate * (
            self.connection_cache.miss_penalty
        )
        pipeline_bound = message_size / per_message

        # PCIe bound: payload shares the bus with context fetches.
        overhead_per_byte = (miss_rate * self.context_fetch_bytes) / message_size
        pcie_bound = pcie_capacity / (1.0 + overhead_per_byte)

        return min(pipeline_bound, self.line_rate, pcie_bound)

    def extra_pcie_rate(self, message_rate: float,
                        active_connections: int) -> float:
        """PCIe bytes/s of context fetches at a given message rate."""
        if message_rate < 0:
            raise ValueError("message_rate must be >= 0")
        miss_rate = self.connection_cache.miss_rate(active_connections)
        return message_rate * miss_rate * self.context_fetch_bytes

    def saturating_connections(self) -> int:
        """Connection count at which the cache begins to miss."""
        return self.connection_cache.entries
