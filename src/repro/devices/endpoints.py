"""Capability models for end-node devices: CPU, memory, GPU, NVMe, CXL.

These bound what workloads can *offer* to the fabric (a GPU has a finite
number of copy engines; an NVMe SSD has read/write ceilings and an IOPS
budget; a CPU core processes a bounded op rate).  They are deliberately
simple capability envelopes — the fabric contention itself is handled by
the flow solver — but they keep workload demands physically plausible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import GBps, ns, us


@dataclass
class CpuModel:
    """One CPU socket's processing capability.

    Attributes:
        socket: Socket index.
        cores: Physical core count.
        ops_per_core: Small-op (request) processing rate per core (ops/s).
        memory_bandwidth: Aggregate socket memory bandwidth (bytes/s).
    """

    socket: int
    cores: int = 28
    ops_per_core: float = 1.5e6
    memory_bandwidth: float = GBps(131)

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")

    def max_op_rate(self, cores_used: int) -> float:
        """Total ops/s with *cores_used* cores dedicated."""
        if not 0 <= cores_used <= self.cores:
            raise ValueError(
                f"cores_used must be in [0, {self.cores}], got {cores_used}"
            )
        return cores_used * self.ops_per_core


@dataclass
class MemoryModel:
    """One DIMM group's capability.

    Attributes:
        channels: Memory channels aggregated into this group.
        per_channel_bandwidth: Bytes/s per channel.
        access_latency: DRAM access latency (seconds).
    """

    channels: int = 6
    per_channel_bandwidth: float = GBps(21.8)
    access_latency: float = ns(85)

    @property
    def bandwidth(self) -> float:
        """Aggregate bandwidth (bytes/s)."""
        return self.channels * self.per_channel_bandwidth


@dataclass
class GpuModel:
    """One GPU's host-communication capability.

    Attributes:
        gpu_id: Topology device id.
        copy_engines: Concurrent DMA engines (bounds parallel transfers).
        per_engine_bandwidth: Bytes/s one engine sustains.
        kernel_launch_latency: Host-side launch overhead (seconds).
    """

    gpu_id: str
    copy_engines: int = 2
    per_engine_bandwidth: float = GBps(26)
    kernel_launch_latency: float = us(8)

    def max_dma_rate(self, engines_used: int = None) -> float:
        """Peak offered DMA rate with *engines_used* engines (default all)."""
        engines = self.copy_engines if engines_used is None else engines_used
        if not 0 <= engines <= self.copy_engines:
            raise ValueError(
                f"engines_used must be in [0, {self.copy_engines}]"
            )
        return engines * self.per_engine_bandwidth


@dataclass
class NvmeModel:
    """One NVMe SSD's capability envelope.

    Attributes:
        nvme_id: Topology device id.
        read_bandwidth: Sequential read ceiling (bytes/s).
        write_bandwidth: Sequential write ceiling (bytes/s).
        max_iops: 4K random IOPS budget.
        access_latency: Media + controller latency (seconds).
    """

    nvme_id: str
    read_bandwidth: float = GBps(6.8)
    write_bandwidth: float = GBps(4.0)
    max_iops: float = 1.0e6
    access_latency: float = us(80)

    def offered_rate(self, io_size: float, read_fraction: float = 1.0) -> float:
        """Offered bytes/s for a mix of *io_size*-byte operations."""
        if io_size <= 0:
            raise ValueError("io_size must be > 0")
        if not 0 <= read_fraction <= 1:
            raise ValueError("read_fraction must be in [0, 1]")
        bandwidth_bound = (read_fraction * self.read_bandwidth
                           + (1 - read_fraction) * self.write_bandwidth)
        iops_bound = self.max_iops * io_size
        return min(bandwidth_bound, iops_bound)


@dataclass
class CxlDeviceModel:
    """A CXL.mem expander (the paper's §2 CXL discussion, [49]).

    Attributes:
        device_id: Topology device id.
        capacity_bytes: Exposed memory capacity.
        access_latency: Device-to-host-memory latency (~150 ns per [49]).
        bandwidth: Link bandwidth (bytes/s).
    """

    device_id: str
    capacity_bytes: float = 256e9
    access_latency: float = ns(150)
    bandwidth: float = GBps(32)
