"""Calibrated host-topology presets.

Each preset reproduces a commodity-server shape from the paper's Figure 1
and the measurement literature it cites (Neugebauer'18, Velten'22, Li'20).
Link capacities/latencies are calibrated to the middle of Figure 1's table:

====  =======================  ==============  ================
item  link class               capacity        basic latency
====  =======================  ==============  ================
(1)   inter-socket connect     20-72 GBps      130-220 ns
(2)   intra-socket connect     100-200 GBps    2-110 ns
(3)   PCIe switch upstream     ~256 Gbps       30-120 ns
(4)   PCIe switch downstream   ~256 Gbps       30-120 ns
(5)   inter-host network       ~200 Gbps       <2 us
====  =======================  ==============  ================

``FIGURE1_RANGES`` encodes the table so tests and ``bench_f1`` can assert
that every preset lands inside the paper's ranges.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..units import GBps, Gbps, ns, us
from .builder import TopologyBuilder
from .elements import LinkClass
from .graph import HostTopology

#: Figure 1's table: link class -> ((min_cap, max_cap) bytes/s,
#: (min_lat, max_lat) seconds).
FIGURE1_RANGES: Dict[LinkClass, Tuple[Tuple[float, float], Tuple[float, float]]] = {
    LinkClass.INTER_SOCKET: ((GBps(20), GBps(72)), (ns(130), ns(220))),
    LinkClass.INTRA_SOCKET: ((GBps(100), GBps(200)), (ns(2), ns(110))),
    LinkClass.PCIE_UPSTREAM: ((Gbps(200), Gbps(300)), (ns(30), ns(120))),
    LinkClass.PCIE_DOWNSTREAM: ((Gbps(200), Gbps(300)), (ns(30), ns(120))),
    LinkClass.INTER_HOST: ((Gbps(100), Gbps(400)), (ns(200), us(2))),
}

# Calibration constants (middle of the Figure-1 ranges; sources in DESIGN.md).
UPI_CAPACITY = GBps(23.3)  # per UPI link; Cascade Lake has 2-3 of them
UPI_LATENCY = ns(140)
MEMBUS_CAPACITY = GBps(131)  # six DDR4-2933 channels, aggregated per DIMM group
MEMBUS_LATENCY = ns(85)
SOCKET_RC_CAPACITY = GBps(150)  # socket mesh to PCIe root complex
SOCKET_RC_LATENCY = ns(50)
PCIE_X16_CAPACITY = Gbps(256)  # PCIe 4.0 x16
PCIE_UP_LATENCY = ns(105)
PCIE_DOWN_LATENCY = ns(70)
INTER_HOST_CAPACITY = Gbps(200)  # 200GbE / HDR InfiniBand
INTER_HOST_LATENCY = us(1.2)
CXL_CAPACITY = GBps(32)
# Link latency chosen so device -> host memory totals ~150ns ([49]):
# cxl link (65ns) + memory bus (85ns) = 150ns end to end.
CXL_LATENCY = ns(65)


def _add_socket_complex(
    builder: TopologyBuilder,
    socket: int,
    dimm_groups: int = 2,
    root_complexes: int = 2,
) -> Dict[str, list]:
    """Add one CPU socket with its memory and PCIe root complexes.

    Returns a dict with the created ids: ``{"socket": id, "dimms": [...],
    "root_complexes": [...]}``.
    """
    socket_id = builder.add_socket(socket)
    dimms = []
    for i in range(dimm_groups):
        dimm = builder.add_dimm(socket, device_id=f"dimm{socket}-{i}")
        builder.connect(
            socket_id, dimm, LinkClass.INTRA_SOCKET,
            capacity=MEMBUS_CAPACITY, base_latency=MEMBUS_LATENCY,
            link_id=f"membus{socket}-{i}",
        )
        dimms.append(dimm)
    rcs = []
    for i in range(root_complexes):
        rc = builder.add_root_complex(socket, device_id=f"rc{socket}-{i}")
        builder.connect(
            socket_id, rc, LinkClass.INTRA_SOCKET,
            capacity=SOCKET_RC_CAPACITY, base_latency=SOCKET_RC_LATENCY,
            link_id=f"mesh{socket}-{i}",
        )
        rcs.append(rc)
    return {"socket": socket_id, "dimms": dimms, "root_complexes": rcs}


def _link_sockets(builder: TopologyBuilder, a: str, b: str,
                  count: int = 2) -> None:
    """Add *count* parallel inter-socket (UPI-like) links between sockets."""
    for i in range(count):
        builder.connect(
            a, b, LinkClass.INTER_SOCKET,
            capacity=UPI_CAPACITY, base_latency=UPI_LATENCY,
            link_id=f"upi-{a}-{b}-{i}",
        )


def minimal_host() -> HostTopology:
    """The smallest interesting host: 1 socket, 1 DIMM, 1 RC, NIC + NVMe.

    Used by the quickstart and as a fast fixture in tests.
    """
    b = TopologyBuilder("minimal")
    parts = _add_socket_complex(b, 0, dimm_groups=1, root_complexes=1)
    rc = parts["root_complexes"][0]
    nic = b.add_nic(0, device_id="nic0")
    nvme = b.add_nvme(0, device_id="nvme0")
    b.connect(rc, nic, LinkClass.PCIE_DOWNSTREAM,
              capacity=PCIE_X16_CAPACITY, base_latency=PCIE_DOWN_LATENCY,
              link_id="pcie-nic0")
    b.connect(rc, nvme, LinkClass.PCIE_DOWNSTREAM,
              capacity=PCIE_X16_CAPACITY, base_latency=PCIE_DOWN_LATENCY,
              link_id="pcie-nvme0")
    external = b.add_external()
    b.connect(nic, external, LinkClass.INTER_HOST,
              capacity=INTER_HOST_CAPACITY, base_latency=INTER_HOST_LATENCY,
              link_id="eth0")
    return b.build()


def cascade_lake_2s() -> HostTopology:
    """Dual-socket Cascade-Lake-like server (the paper's Figure 1 shape).

    Two sockets joined by two UPI links; each socket has two DIMM groups and
    two PCIe root complexes.  Socket 0 carries a PCIe switch fanning out to
    a NIC and an NVMe SSD (the multi-level PCIe fabric of Figure 1) plus a
    direct-attached GPU; socket 1 carries a direct-attached NIC, GPU, and
    NVMe.  ``nic0`` uplinks to the inter-host network.
    """
    b = TopologyBuilder("cascade_lake_2s")
    s0 = _add_socket_complex(b, 0)
    s1 = _add_socket_complex(b, 1)
    _link_sockets(b, s0["socket"], s1["socket"], count=2)

    # Socket 0: switch below rc0-0 with NIC + NVMe; GPU on rc0-1.
    sw0 = b.add_pcie_switch(0, device_id="pcisw0")
    b.connect(s0["root_complexes"][0], sw0, LinkClass.PCIE_UPSTREAM,
              capacity=PCIE_X16_CAPACITY, base_latency=PCIE_UP_LATENCY,
              link_id="pcie-up0")
    nic0 = b.add_nic(0, device_id="nic0")
    nvme0 = b.add_nvme(0, device_id="nvme0")
    b.connect(sw0, nic0, LinkClass.PCIE_DOWNSTREAM,
              capacity=PCIE_X16_CAPACITY, base_latency=PCIE_DOWN_LATENCY,
              link_id="pcie-nic0")
    b.connect(sw0, nvme0, LinkClass.PCIE_DOWNSTREAM,
              capacity=PCIE_X16_CAPACITY, base_latency=PCIE_DOWN_LATENCY,
              link_id="pcie-nvme0")
    gpu0 = b.add_gpu(0, device_id="gpu0")
    b.connect(s0["root_complexes"][1], gpu0, LinkClass.PCIE_DOWNSTREAM,
              capacity=PCIE_X16_CAPACITY, base_latency=PCIE_DOWN_LATENCY,
              link_id="pcie-gpu0")

    # Socket 1: direct-attached NIC, GPU, NVMe.
    nic1 = b.add_nic(1, device_id="nic1")
    b.connect(s1["root_complexes"][0], nic1, LinkClass.PCIE_DOWNSTREAM,
              capacity=PCIE_X16_CAPACITY, base_latency=PCIE_DOWN_LATENCY,
              link_id="pcie-nic1")
    gpu1 = b.add_gpu(1, device_id="gpu1")
    b.connect(s1["root_complexes"][0], gpu1, LinkClass.PCIE_DOWNSTREAM,
              capacity=PCIE_X16_CAPACITY, base_latency=PCIE_DOWN_LATENCY,
              link_id="pcie-gpu1")
    nvme1 = b.add_nvme(1, device_id="nvme1")
    b.connect(s1["root_complexes"][1], nvme1, LinkClass.PCIE_DOWNSTREAM,
              capacity=PCIE_X16_CAPACITY, base_latency=PCIE_DOWN_LATENCY,
              link_id="pcie-nvme1")

    external = b.add_external()
    b.connect(nic0, external, LinkClass.INTER_HOST,
              capacity=INTER_HOST_CAPACITY, base_latency=INTER_HOST_LATENCY,
              link_id="eth0")
    b.connect(nic1, external, LinkClass.INTER_HOST,
              capacity=INTER_HOST_CAPACITY, base_latency=INTER_HOST_LATENCY,
              link_id="eth1")
    return b.build()


def dgx_like() -> HostTopology:
    """An 8-GPU / 8-NIC DGX-like box (§1's NVIDIA DGX example).

    Two sockets, two root complexes per socket, one PCIe switch per root
    complex; each switch fans out to two GPUs and two NICs, giving several
    alternative GPU<->NIC/SSD pathways — the scheduler's playground (§3.2).
    """
    b = TopologyBuilder("dgx_like")
    parts = [_add_socket_complex(b, 0), _add_socket_complex(b, 1)]
    _link_sockets(b, parts[0]["socket"], parts[1]["socket"], count=3)

    external = b.add_external()
    gpu_index = 0
    nic_index = 0
    for socket, socket_parts in enumerate(parts):
        for rc_i, rc in enumerate(socket_parts["root_complexes"]):
            sw = b.add_pcie_switch(socket, device_id=f"pcisw{socket}-{rc_i}")
            b.connect(rc, sw, LinkClass.PCIE_UPSTREAM,
                      capacity=PCIE_X16_CAPACITY, base_latency=PCIE_UP_LATENCY,
                      link_id=f"pcie-up{socket}-{rc_i}")
            for _ in range(2):
                gpu = b.add_gpu(socket, device_id=f"gpu{gpu_index}")
                b.connect(sw, gpu, LinkClass.PCIE_DOWNSTREAM,
                          capacity=PCIE_X16_CAPACITY,
                          base_latency=PCIE_DOWN_LATENCY,
                          link_id=f"pcie-gpu{gpu_index}")
                gpu_index += 1
            for _ in range(2):
                nic = b.add_nic(socket, device_id=f"nic{nic_index}")
                b.connect(sw, nic, LinkClass.PCIE_DOWNSTREAM,
                          capacity=PCIE_X16_CAPACITY,
                          base_latency=PCIE_DOWN_LATENCY,
                          link_id=f"pcie-nic{nic_index}")
                b.connect(nic, external, LinkClass.INTER_HOST,
                          capacity=INTER_HOST_CAPACITY,
                          base_latency=INTER_HOST_LATENCY,
                          link_id=f"eth{nic_index}")
                nic_index += 1
        # One NVMe per socket on the second root complex's switch.
        nvme = b.add_nvme(socket, device_id=f"nvme{socket}")
        b.connect(f"pcisw{socket}-1", nvme, LinkClass.PCIE_DOWNSTREAM,
                  capacity=PCIE_X16_CAPACITY, base_latency=PCIE_DOWN_LATENCY,
                  link_id=f"pcie-nvme{socket}")
    return b.build()


def epyc_like_1s() -> HostTopology:
    """Single-socket EPYC-like host: four root complexes, direct-attach I/O."""
    b = TopologyBuilder("epyc_like_1s")
    parts = _add_socket_complex(b, 0, dimm_groups=2, root_complexes=4)
    rcs = parts["root_complexes"]
    external = b.add_external()
    nic = b.add_nic(0, device_id="nic0")
    b.connect(rcs[0], nic, LinkClass.PCIE_DOWNSTREAM,
              capacity=PCIE_X16_CAPACITY, base_latency=PCIE_DOWN_LATENCY,
              link_id="pcie-nic0")
    b.connect(nic, external, LinkClass.INTER_HOST,
              capacity=INTER_HOST_CAPACITY, base_latency=INTER_HOST_LATENCY,
              link_id="eth0")
    gpu = b.add_gpu(0, device_id="gpu0")
    b.connect(rcs[1], gpu, LinkClass.PCIE_DOWNSTREAM,
              capacity=PCIE_X16_CAPACITY, base_latency=PCIE_DOWN_LATENCY,
              link_id="pcie-gpu0")
    for i, rc in enumerate(rcs[2:]):
        nvme = b.add_nvme(0, device_id=f"nvme{i}")
        b.connect(rc, nvme, LinkClass.PCIE_DOWNSTREAM,
                  capacity=PCIE_X16_CAPACITY, base_latency=PCIE_DOWN_LATENCY,
                  link_id=f"pcie-nvme{i}")
    return b.build()


def cxl_host() -> HostTopology:
    """Cascade-Lake-like host extended with a CXL memory device (§2, [49])."""
    topo = cascade_lake_2s()
    b = TopologyBuilder.extend(topo)
    cxl = b.add_cxl_device(0, device_id="cxl0")
    b.connect("socket0", cxl, LinkClass.CXL,
              capacity=CXL_CAPACITY, base_latency=CXL_LATENCY,
              link_id="cxl-link0")
    topo.name = "cxl_host"
    return b.build()


#: Registry of all shipped presets by name.
PRESETS = {
    "minimal": minimal_host,
    "cascade_lake_2s": cascade_lake_2s,
    "dgx_like": dgx_like,
    "epyc_like_1s": epyc_like_1s,
    "cxl_host": cxl_host,
}


def load_preset(name: str) -> HostTopology:
    """Build the preset called *name*; raises ``KeyError`` with choices."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; choices: {sorted(PRESETS)}"
        ) from None
    return factory()
