"""ASCII rendering of host topologies.

A text tree for terminals and docs: sockets at the top level, their memory
and PCIe subtrees underneath, link parameters annotated per edge.  This is
the ``describe``-but-structural view the CLI's operators read.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..units import format_bandwidth, format_time
from .elements import DeviceType, LinkClass
from .graph import HostTopology


def _edge_label(topology: HostTopology, a: str, b: str) -> str:
    links = topology.links_between(a, b)
    if not links:
        return ""
    link = min(links, key=lambda l: l.link_id)
    extra = f" x{len(links)}" if len(links) > 1 else ""
    health = "" if link.healthy else " [DEGRADED]"
    return (f"[{link.link_id}{extra}: "
            f"{format_bandwidth(link.effective_capacity)}, "
            f"{format_time(link.base_latency)}]{health}")


def _subtree(topology: HostTopology, device_id: str, parent: Optional[str],
             visited: Set[str], prefix: str, lines: List[str]) -> None:
    children = [
        n for n in sorted(topology.neighbors(device_id))
        if n != parent and n not in visited
    ]
    for index, child in enumerate(children):
        child_type = topology.device(child).device_type
        last = index == len(children) - 1
        branch = "`-- " if last else "|-- "
        label = _edge_label(topology, device_id, child)
        lines.append(f"{prefix}{branch}{child} ({child_type.value}) {label}")
        if child_type is DeviceType.EXTERNAL:
            # the external network is a leaf under every NIC, never a
            # transit point for the tree walk
            continue
        visited.add(child)
        _subtree(topology, child, device_id, visited,
                 prefix + ("    " if last else "|   "), lines)


def render_tree(topology: HostTopology) -> str:
    """Render *topology* as an ASCII tree rooted at its CPU sockets.

    Inter-socket links are listed first (they are the only cycles in a
    commodity host, so the per-socket subtrees stay clean trees).
    """
    lines: List[str] = [f"{topology.name}"]
    for link in topology.links(LinkClass.INTER_SOCKET):
        lines.append(
            f"  {link.src} <=> {link.dst} "
            f"[{link.link_id}: {format_bandwidth(link.effective_capacity)}, "
            f"{format_time(link.base_latency)}]"
        )
    sockets = topology.devices(DeviceType.CPU_SOCKET)
    visited: Set[str] = {d.device_id for d in sockets}
    for socket in sorted(sockets, key=lambda d: d.device_id):
        lines.append(f"{socket.device_id} (cpu_socket)")
        _subtree(topology, socket.device_id, None, visited, "  ", lines)
    # anything unreachable from a socket (shouldn't happen in valid hosts)
    orphans = [d.device_id for d in topology.devices()
               if d.device_id not in visited]
    for orphan in sorted(orphans):
        if topology.device(orphan).device_type is DeviceType.EXTERNAL:
            continue  # external shows as a leaf under its NIC
        lines.append(f"(unreached) {orphan}")
    return "\n".join(lines)
