"""Structural validation of host topologies.

A topology that passes validation is safe for the simulator and the resource
manager: connected, endpoint devices hang off fabric correctly, and the
Figure-1 link-class conventions are respected (e.g. PCIe downstream links
attach a switch/root-complex to a device, inter-socket links join sockets).
"""

from __future__ import annotations

from typing import List

from ..errors import InvalidTopologyError
from .elements import DeviceType, LinkClass
from .graph import HostTopology

#: Which (unordered) device-type pairs each link class may join.  ``None``
#: entries match any device type.
_ALLOWED_ENDS = {
    LinkClass.INTER_SOCKET: [
        (DeviceType.CPU_SOCKET, DeviceType.CPU_SOCKET),
    ],
    LinkClass.INTRA_SOCKET: [
        (DeviceType.CPU_SOCKET, DeviceType.DIMM),
        (DeviceType.CPU_SOCKET, DeviceType.MEMORY_CONTROLLER),
        (DeviceType.MEMORY_CONTROLLER, DeviceType.DIMM),
        (DeviceType.CPU_SOCKET, DeviceType.PCIE_ROOT_COMPLEX),
        (DeviceType.CPU_SOCKET, DeviceType.CPU_CORE),
        (DeviceType.CPU_SOCKET, DeviceType.LLC),
    ],
    LinkClass.PCIE_UPSTREAM: [
        (DeviceType.PCIE_ROOT_COMPLEX, DeviceType.PCIE_SWITCH),
        (DeviceType.PCIE_SWITCH, DeviceType.PCIE_SWITCH),
    ],
    LinkClass.PCIE_DOWNSTREAM: [
        (DeviceType.PCIE_SWITCH, DeviceType.NIC),
        (DeviceType.PCIE_SWITCH, DeviceType.GPU),
        (DeviceType.PCIE_SWITCH, DeviceType.NVME_SSD),
        (DeviceType.PCIE_SWITCH, DeviceType.FPGA),
        (DeviceType.PCIE_ROOT_COMPLEX, DeviceType.NIC),
        (DeviceType.PCIE_ROOT_COMPLEX, DeviceType.GPU),
        (DeviceType.PCIE_ROOT_COMPLEX, DeviceType.NVME_SSD),
        (DeviceType.PCIE_ROOT_COMPLEX, DeviceType.FPGA),
    ],
    LinkClass.INTER_HOST: [
        (DeviceType.NIC, DeviceType.EXTERNAL),
    ],
    LinkClass.CXL: [
        (DeviceType.CPU_SOCKET, DeviceType.CXL_DEVICE),
        (DeviceType.PCIE_ROOT_COMPLEX, DeviceType.CXL_DEVICE),
    ],
}


def validation_errors(topology: HostTopology) -> List[str]:
    """Return a list of human-readable problems; empty list means valid."""
    problems: List[str] = []

    if len(topology) == 0:
        problems.append("topology has no devices")
        return problems

    # Link-class endpoint conventions.
    for link in topology.links():
        src_t = topology.device(link.src).device_type
        dst_t = topology.device(link.dst).device_type
        allowed = _ALLOWED_ENDS[link.link_class]
        if (src_t, dst_t) not in allowed and (dst_t, src_t) not in allowed:
            problems.append(
                f"link {link.link_id!r}: class {link.link_class.value} may not "
                f"join {src_t.value} and {dst_t.value}"
            )

    # Connectivity: every endpoint device must be reachable from a socket.
    if not topology.is_connected():
        problems.append("topology is not connected over up links")

    # Isolated devices are almost always construction bugs.
    for device in topology.devices():
        if topology.degree(device.device_id) == 0:
            problems.append(f"device {device.device_id!r} has no links")

    # Inter-socket links must join *different* sockets.
    for link in topology.links(LinkClass.INTER_SOCKET):
        if topology.socket_of(link.src) == topology.socket_of(link.dst):
            problems.append(
                f"link {link.link_id!r}: inter-socket link joins the same socket"
            )

    # A NIC with an inter-host link should exist if an EXTERNAL node exists.
    externals = topology.devices(DeviceType.EXTERNAL)
    if externals and not topology.links(LinkClass.INTER_HOST):
        problems.append("external device present but no inter-host link")

    return problems


def validate_topology(topology: HostTopology) -> None:
    """Raise :class:`InvalidTopologyError` listing all problems, if any."""
    problems = validation_errors(topology)
    if problems:
        raise InvalidTopologyError(
            f"topology {topology.name!r} failed validation:\n  "
            + "\n  ".join(problems)
        )
