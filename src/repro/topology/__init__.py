"""Intra-host network topology: devices, links, graphs, routing, presets."""

from .builder import TopologyBuilder
from .elements import Device, DeviceType, Link, LinkClass
from .graph import HostTopology
from .presets import (
    FIGURE1_RANGES,
    PRESETS,
    cascade_lake_2s,
    cxl_host,
    dgx_like,
    epyc_like_1s,
    load_preset,
    minimal_host,
)
from .routing import (
    Path,
    enumerate_paths,
    k_shortest_paths,
    make_path,
    shortest_path,
    widest_path,
)
from .render import render_tree
from .serialize import (
    topology_diff,
    topology_from_dict,
    topology_from_json,
    topology_to_dict,
    topology_to_json,
)
from .validate import validate_topology, validation_errors

__all__ = [
    "Device",
    "DeviceType",
    "Link",
    "LinkClass",
    "HostTopology",
    "TopologyBuilder",
    "Path",
    "make_path",
    "enumerate_paths",
    "shortest_path",
    "widest_path",
    "k_shortest_paths",
    "validate_topology",
    "validation_errors",
    "topology_to_dict",
    "topology_from_dict",
    "topology_to_json",
    "topology_from_json",
    "topology_diff",
    "render_tree",
    "FIGURE1_RANGES",
    "PRESETS",
    "load_preset",
    "minimal_host",
    "cascade_lake_2s",
    "dgx_like",
    "epyc_like_1s",
    "cxl_host",
]
