"""Path enumeration and selection over a :class:`HostTopology`.

Flows in the intra-host network traverse an explicit device path (e.g.
NIC -> PCIe switch -> root complex -> socket -> DIMM).  This module provides
the path primitives everything else builds on:

* :class:`Path` — an immutable device/link sequence with latency and
  bottleneck-capacity accessors;
* :func:`enumerate_paths` — all simple paths between two devices (bounded);
* :func:`shortest_path` — minimum base-latency path;
* :func:`widest_path` — maximum bottleneck-capacity path;
* :func:`k_shortest_paths` — candidates for the topology-aware scheduler.

Parallel links (MultiGraph edges) are handled by expanding each device-level
path into the per-link choices and keeping the best link per hop for the
metric in question.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import NoPathError
from .elements import DeviceType, Link
from .graph import HostTopology

#: Device types that may never forward traffic (interior of a path).
_NO_TRANSIT = frozenset(
    {
        DeviceType.GPU,
        DeviceType.NVME_SSD,
        DeviceType.DIMM,
        DeviceType.FPGA,
        DeviceType.CXL_DEVICE,
        DeviceType.EXTERNAL,
    }
)


@dataclass(frozen=True)
class Path:
    """An immutable path through the topology.

    Attributes:
        devices: Device ids visited, length ``n >= 1``.
        links: Link ids traversed, length ``n - 1``.
        base_latency: Sum of link base latencies (seconds, zero load).
        bottleneck_capacity: Minimum effective link capacity (bytes/s).
    """

    devices: Tuple[str, ...]
    links: Tuple[str, ...]
    base_latency: float
    bottleneck_capacity: float

    @property
    def src(self) -> str:
        """First device on the path."""
        return self.devices[0]

    @property
    def dst(self) -> str:
        """Last device on the path."""
        return self.devices[-1]

    @property
    def hop_count(self) -> int:
        """Number of links traversed."""
        return len(self.links)

    def uses_link(self, link_id: str) -> bool:
        """Whether this path traverses *link_id*."""
        return link_id in self.links

    def uses_device(self, device_id: str) -> bool:
        """Whether this path visits *device_id*."""
        return device_id in self.devices

    def __str__(self) -> str:
        return " -> ".join(self.devices)


def make_path(topology: HostTopology, devices: Sequence[str],
              links: Sequence[str]) -> Path:
    """Construct a :class:`Path`, computing its latency and bottleneck.

    Raises ``ValueError`` if the link sequence does not connect the device
    sequence in order.
    """
    devices = tuple(devices)
    links = tuple(links)
    if len(links) != max(len(devices) - 1, 0):
        raise ValueError(
            f"path shape mismatch: {len(devices)} devices, {len(links)} links"
        )
    total_latency = 0.0
    bottleneck = float("inf")
    for i, link_id in enumerate(links):
        link = topology.link(link_id)
        ends = {link.src, link.dst}
        if ends != {devices[i], devices[i + 1]}:
            raise ValueError(
                f"link {link_id!r} does not join {devices[i]!r} and "
                f"{devices[i + 1]!r}"
            )
        total_latency += link.base_latency
        bottleneck = min(bottleneck, link.effective_capacity)
    if not links:
        bottleneck = float("inf")
    return Path(devices=devices, links=links,
                base_latency=total_latency, bottleneck_capacity=bottleneck)


def _best_link(links: List[Link], metric: Callable[[Link], float],
               maximize: bool, healthy_only: bool) -> Optional[Link]:
    """Pick the best link among parallel candidates for a metric."""
    if healthy_only:
        links = [l for l in links if l.up and l.effective_capacity > 0]
    if not links:
        return None
    return (max if maximize else min)(links, key=metric)


def _expand_device_path(topology: HostTopology, node_path: Sequence[str],
                        prefer: str, healthy_only: bool) -> Optional[Path]:
    """Turn a device-id path into a :class:`Path`, choosing parallel links.

    *prefer* is ``"latency"`` (min base latency per hop) or ``"capacity"``
    (max effective capacity per hop).  Returns ``None`` if some hop has no
    usable link.
    """
    links: List[str] = []
    for a, b in zip(node_path, node_path[1:]):
        candidates = topology.links_between(a, b)
        if prefer == "capacity":
            chosen = _best_link(candidates, lambda l: l.effective_capacity,
                                True, healthy_only)
        else:
            chosen = _best_link(candidates, lambda l: l.base_latency,
                                False, healthy_only)
        if chosen is None:
            return None
        links.append(chosen.link_id)
    return make_path(topology, node_path, links)


def enumerate_paths(
    topology: HostTopology,
    src: str,
    dst: str,
    max_hops: int = 8,
    max_paths: int = 64,
    prefer: str = "latency",
    healthy_only: bool = True,
) -> List[Path]:
    """All simple paths from *src* to *dst*, bounded by hops and count.

    Paths are returned sorted by (hop count, base latency).  Intra-host
    topologies are small trees-plus-UPI, so modest bounds cover everything;
    the bounds guard against pathological hand-built meshes.

    ``healthy_only=False`` also routes over down links — diagnostics use
    this to probe the *physical* path and observe the loss, the way a real
    ping reports 100% loss rather than "no route".
    """
    topology.device(src)
    topology.device(dst)
    if src == dst:
        return [make_path(topology, (src,), ())]
    # Enumeration walks the whole graph via networkx and dominates the
    # admission fast path; results are pure functions of (arguments, link
    # state), so they are cached on the topology against a link-state
    # fingerprint.  Paths are frozen, but callers sort/slice the list, so
    # hand each caller a fresh list over the shared tuple.
    cache_key = (src, dst, max_hops, max_paths, prefer, healthy_only)
    cached = topology._route_cache_get(cache_key)
    if cached is not None:
        return list(cached)
    graph = topology.healthy_subgraph() if healthy_only else topology.graph
    paths: List[Path] = []
    try:
        node_paths: Iterator[List[str]] = nx.all_simple_paths(
            graph, src, dst, cutoff=max_hops
        )
    except nx.NodeNotFound:  # pragma: no cover - validated above
        return []
    seen_nodes = set()
    seen_links = set()
    for node_path in node_paths:
        # MultiGraph yields one node path per parallel-edge combination;
        # expansion picks the best parallel link, so dedupe by node path.
        key = tuple(node_path)
        if key in seen_nodes:
            continue
        seen_nodes.add(key)
        if not _valid_transit(topology, node_path):
            continue
        path = _expand_device_path(topology, node_path, prefer, healthy_only)
        if path is None:
            continue
        for variant in _parallel_variants(topology, path, healthy_only):
            if variant.links not in seen_links:
                seen_links.add(variant.links)
                paths.append(variant)
            if len(paths) >= max_paths:
                break
        if len(paths) >= max_paths:
            break
    paths.sort(key=lambda p: (p.hop_count, p.base_latency))
    topology._route_cache_put(cache_key, tuple(paths))
    return paths


def _parallel_variants(topology: HostTopology, path: Path,
                       healthy_only: bool) -> List[Path]:
    """*path* plus one variant per alternative parallel link per hop.

    Dual-socket hosts have 2-3 parallel UPI links; the scheduler needs
    them as distinct candidates to balance across.  One hop is varied at a
    time (no cross-product — intra-host paths have at most one or two
    parallel-link hops, and single-substitution already exposes every
    individual link).
    """
    variants = [path]
    for i in range(path.hop_count):
        a, b = path.devices[i], path.devices[i + 1]
        for alternative in topology.links_between(a, b):
            if alternative.link_id == path.links[i]:
                continue
            if healthy_only and not (alternative.up
                                     and alternative.effective_capacity > 0):
                continue
            links = list(path.links)
            links[i] = alternative.link_id
            variants.append(make_path(topology, path.devices, links))
    return variants


def _valid_transit(topology: HostTopology, node_path: Sequence[str]) -> bool:
    """Whether every interior device of *node_path* may forward traffic.

    Leaf devices (GPU, SSD, DIMM, external...) terminate transactions; they
    never appear mid-path.  A NIC forwards only between the host fabric and
    its inter-host port, so an interior NIC must be adjacent to the external
    node within the path.
    """
    for i in range(1, len(node_path) - 1):
        dtype = topology.device(node_path[i]).device_type
        if dtype in _NO_TRANSIT:
            return False
        if dtype == DeviceType.NIC:
            neighbors = {node_path[i - 1], node_path[i + 1]}
            adjacent_external = any(
                topology.device(n).device_type == DeviceType.EXTERNAL
                for n in neighbors
            )
            if not adjacent_external:
                return False
    return True


def shortest_path(topology: HostTopology, src: str, dst: str,
                  max_hops: int = 8, healthy_only: bool = True) -> Path:
    """The minimum base-latency path; raises :class:`NoPathError` if none."""
    candidates = enumerate_paths(topology, src, dst, max_hops=max_hops,
                                 prefer="latency", healthy_only=healthy_only)
    if not candidates:
        raise NoPathError(src, dst, "no healthy path within hop bound")
    return min(candidates, key=lambda p: p.base_latency)


def widest_path(topology: HostTopology, src: str, dst: str,
                max_hops: int = 8) -> Path:
    """The maximum bottleneck-capacity path; ties broken by latency."""
    candidates = enumerate_paths(topology, src, dst, max_hops=max_hops,
                                 prefer="capacity")
    if not candidates:
        raise NoPathError(src, dst, "no healthy path within hop bound")
    return max(candidates, key=lambda p: (p.bottleneck_capacity, -p.base_latency))


def k_shortest_paths(topology: HostTopology, src: str, dst: str, k: int = 4,
                     max_hops: int = 8) -> List[Path]:
    """Up to *k* lowest-latency simple paths (scheduler candidates)."""
    candidates = enumerate_paths(topology, src, dst, max_hops=max_hops,
                                 prefer="latency")
    if not candidates:
        raise NoPathError(src, dst, "no healthy path within hop bound")
    candidates.sort(key=lambda p: (p.base_latency, p.hop_count))
    return candidates[:k]
