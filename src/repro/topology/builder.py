"""Fluent builder for :class:`~repro.topology.graph.HostTopology`.

Presets (``repro.topology.presets``) are written against this builder; it
keeps id generation and the device/link pairing conventions in one place so
hand-built test topologies and the shipped presets look identical.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from .elements import Device, DeviceType, Link, LinkClass
from .graph import HostTopology


class TopologyBuilder:
    """Incrementally assemble a :class:`HostTopology`.

    Every ``add_*`` method returns the created device's id so call sites can
    chain connections without holding Device objects:

    >>> b = TopologyBuilder("demo")
    >>> s0 = b.add_socket(0)
    >>> nic = b.add_nic(socket=0)
    >>> rc = b.add_root_complex(socket=0)
    >>> _ = b.connect(s0, rc, LinkClass.INTRA_SOCKET, capacity=1e11,
    ...               base_latency=5e-8)
    >>> _ = b.connect(rc, nic, LinkClass.PCIE_DOWNSTREAM, capacity=3.2e10,
    ...               base_latency=8e-8)
    >>> topo = b.build()
    """

    def __init__(self, name: str = "host") -> None:
        self._topology = HostTopology(name)
        self._counters: Dict[str, itertools.count] = {}

    @classmethod
    def extend(cls, topology: HostTopology) -> "TopologyBuilder":
        """A builder that adds to an *existing* topology (preset variants)."""
        builder = cls.__new__(cls)
        builder._topology = topology
        builder._counters = {}
        return builder

    def _next_id(self, prefix: str) -> str:
        counter = self._counters.setdefault(prefix, itertools.count())
        return f"{prefix}{next(counter)}"

    # -- devices -----------------------------------------------------------

    def add_device(
        self,
        device_type: DeviceType,
        socket: Optional[int] = None,
        device_id: Optional[str] = None,
        **attrs: object,
    ) -> str:
        """Add a device of *device_type*; auto-generates an id if not given."""
        if device_id is None:
            device_id = self._next_id(device_type.value.replace("_", "-"))
        self._topology.add_device(
            Device(device_id=device_id, device_type=device_type,
                   socket=socket, attrs=dict(attrs))
        )
        return device_id

    def add_socket(self, socket: int, device_id: Optional[str] = None,
                   **attrs: object) -> str:
        """Add a CPU socket; default id is ``socket<N>``."""
        if device_id is None:
            device_id = f"socket{socket}"
        return self.add_device(DeviceType.CPU_SOCKET, socket=socket,
                               device_id=device_id, **attrs)

    def add_dimm(self, socket: int, device_id: Optional[str] = None,
                 **attrs: object) -> str:
        """Add a DIMM attached to *socket*."""
        return self.add_device(DeviceType.DIMM, socket=socket,
                               device_id=device_id, **attrs)

    def add_root_complex(self, socket: int, device_id: Optional[str] = None,
                         **attrs: object) -> str:
        """Add a PCIe root complex on *socket*."""
        return self.add_device(DeviceType.PCIE_ROOT_COMPLEX, socket=socket,
                               device_id=device_id, **attrs)

    def add_pcie_switch(self, socket: int, device_id: Optional[str] = None,
                        **attrs: object) -> str:
        """Add a PCIe switch below *socket*'s root complex."""
        return self.add_device(DeviceType.PCIE_SWITCH, socket=socket,
                               device_id=device_id, **attrs)

    def add_nic(self, socket: int, device_id: Optional[str] = None,
                **attrs: object) -> str:
        """Add a NIC on *socket*."""
        return self.add_device(DeviceType.NIC, socket=socket,
                               device_id=device_id, **attrs)

    def add_gpu(self, socket: int, device_id: Optional[str] = None,
                **attrs: object) -> str:
        """Add a GPU on *socket*."""
        return self.add_device(DeviceType.GPU, socket=socket,
                               device_id=device_id, **attrs)

    def add_nvme(self, socket: int, device_id: Optional[str] = None,
                 **attrs: object) -> str:
        """Add an NVMe SSD on *socket*."""
        return self.add_device(DeviceType.NVME_SSD, socket=socket,
                               device_id=device_id, **attrs)

    def add_cxl_device(self, socket: int, device_id: Optional[str] = None,
                       **attrs: object) -> str:
        """Add a CXL memory/accelerator device on *socket*."""
        return self.add_device(DeviceType.CXL_DEVICE, socket=socket,
                               device_id=device_id, **attrs)

    def add_external(self, device_id: str = "external",
                     **attrs: object) -> str:
        """Add the stand-in node for the remote side of the inter-host link."""
        return self.add_device(DeviceType.EXTERNAL, socket=None,
                               device_id=device_id, **attrs)

    # -- links ---------------------------------------------------------------

    def connect(
        self,
        src: str,
        dst: str,
        link_class: LinkClass,
        capacity: float,
        base_latency: float,
        link_id: Optional[str] = None,
    ) -> str:
        """Connect two existing devices; returns the link id."""
        if link_id is None:
            link_id = self._next_id(f"{link_class.value}-")
        self._topology.add_link(
            Link(
                link_id=link_id,
                src=src,
                dst=dst,
                link_class=link_class,
                capacity=capacity,
                base_latency=base_latency,
            )
        )
        return link_id

    # -- finish --------------------------------------------------------------

    def build(self, validate: bool = True) -> HostTopology:
        """Return the assembled topology, validating it by default."""
        if validate:
            # Local import to avoid a cycle (validate imports elements only).
            from .validate import validate_topology

            validate_topology(self._topology)
        return self._topology
