"""The :class:`HostTopology` graph: devices + links with query helpers.

A thin, validated wrapper around :mod:`networkx` that keeps device/link
objects authoritative (the graph stores only ids) and exposes the queries
the rest of the library needs: neighbors, incident links, NUMA locality,
and class-based filtering.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx

from ..errors import (
    DuplicateElementError,
    UnknownDeviceError,
    UnknownLinkError,
)
from .elements import Device, DeviceType, Link, LinkClass


class HostTopology:
    """A mutable intra-host network topology.

    Devices are nodes, links are undirected edges (capacity is enforced per
    direction at the flow layer).  Multiple parallel links between the same
    device pair are supported (e.g. two UPI links between sockets), which is
    why links are addressed by id rather than by endpoint pair.
    """

    def __init__(self, name: str = "host") -> None:
        self.name = name
        self._devices: Dict[str, Device] = {}
        self._links: Dict[str, Link] = {}
        # MultiGraph because dual-socket boxes commonly have 2-3 UPI links.
        self._graph = nx.MultiGraph()
        # Path-enumeration cache (see routing.enumerate_paths), guarded by
        # a link-state fingerprint rather than a version counter so it
        # stays correct even when Link objects are mutated directly.
        self._route_cache: Dict[tuple, tuple] = {}
        self._route_cache_state: Optional[tuple] = None

    # -- construction ------------------------------------------------------

    def add_device(self, device: Device) -> Device:
        """Register *device*; raises :class:`DuplicateElementError` on reuse."""
        if device.device_id in self._devices:
            raise DuplicateElementError(f"device already exists: {device.device_id!r}")
        self._devices[device.device_id] = device
        self._graph.add_node(device.device_id)
        return device

    def add_link(self, link: Link) -> Link:
        """Register *link* between two existing devices."""
        if link.link_id in self._links:
            raise DuplicateElementError(f"link already exists: {link.link_id!r}")
        for end in (link.src, link.dst):
            if end not in self._devices:
                raise UnknownDeviceError(end)
        self._links[link.link_id] = link
        self._graph.add_edge(link.src, link.dst, key=link.link_id)
        return link

    def remove_link(self, link_id: str) -> Link:
        """Remove and return the link with *link_id*."""
        link = self.link(link_id)
        self._graph.remove_edge(link.src, link.dst, key=link_id)
        del self._links[link_id]
        return link

    # -- lookup ------------------------------------------------------------

    def device(self, device_id: str) -> Device:
        """Return the device with *device_id* or raise :class:`UnknownDeviceError`."""
        try:
            return self._devices[device_id]
        except KeyError:
            raise UnknownDeviceError(device_id) from None

    def link(self, link_id: str) -> Link:
        """Return the link with *link_id* or raise :class:`UnknownLinkError`."""
        try:
            return self._links[link_id]
        except KeyError:
            raise UnknownLinkError(link_id) from None

    def has_device(self, device_id: str) -> bool:
        """Whether a device with *device_id* exists."""
        return device_id in self._devices

    def has_link(self, link_id: str) -> bool:
        """Whether a link with *link_id* exists."""
        return link_id in self._links

    # -- iteration ---------------------------------------------------------

    def devices(self, device_type: Optional[DeviceType] = None) -> List[Device]:
        """All devices, optionally filtered by :class:`DeviceType`."""
        if device_type is None:
            return list(self._devices.values())
        return [d for d in self._devices.values() if d.device_type == device_type]

    def links(self, link_class: Optional[LinkClass] = None) -> List[Link]:
        """All links, optionally filtered by :class:`LinkClass`."""
        if link_class is None:
            return list(self._links.values())
        return [l for l in self._links.values() if l.link_class == link_class]

    def device_ids(self) -> Iterator[str]:
        """Iterate over all device ids."""
        return iter(self._devices)

    def link_ids(self) -> Iterator[str]:
        """Iterate over all link ids."""
        return iter(self._links)

    def endpoints(self) -> List[Device]:
        """Devices that can originate/sink application flows."""
        return [d for d in self._devices.values() if d.is_endpoint]

    def __len__(self) -> int:
        return len(self._devices)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._devices

    # -- adjacency ---------------------------------------------------------

    def incident_links(self, device_id: str) -> List[Link]:
        """Links incident to *device_id*."""
        self.device(device_id)  # validate
        result = []
        for _, _, key in self._graph.edges(device_id, keys=True):
            result.append(self._links[key])
        return result

    def neighbors(self, device_id: str) -> List[str]:
        """Device ids adjacent to *device_id* (deduplicated)."""
        self.device(device_id)
        return list(self._graph.neighbors(device_id))

    def links_between(self, a: str, b: str) -> List[Link]:
        """All parallel links between devices *a* and *b*."""
        self.device(a)
        self.device(b)
        if not self._graph.has_edge(a, b):
            return []
        return [self._links[key] for key in self._graph[a][b]]

    def degree(self, device_id: str) -> int:
        """Number of links incident to *device_id*."""
        return len(self.incident_links(device_id))

    # -- route cache -------------------------------------------------------

    #: Route caches shared across instances, keyed by (name, fingerprint).
    #: The fingerprint captures full structure and link state, so the many
    #: identical hosts of a fleet pay for each (src, dst) enumeration once
    #: process-wide instead of once per host.
    _SHARED_ROUTE_CACHES: Dict[tuple, Dict[tuple, tuple]] = {}
    _SHARED_ROUTE_CACHE_LIMIT = 128

    def _route_fingerprint(self) -> Tuple[tuple, ...]:
        """Everything enumerated paths depend on, per link.

        Endpoints pin the structure (two topologies agreeing on every
        link's id and ends enumerate identical paths); health, capacity,
        and degradation each change which paths are viable or what their
        baked-in bottleneck is.
        """
        return tuple(
            (link_id, link.src, link.dst, link.up, link.capacity,
             link.degraded_capacity)
            for link_id, link in self._links.items()
        )

    def _route_cache_get(self, key: tuple) -> Optional[tuple]:
        """Cached enumeration for *key*, swapping caches when stale."""
        state = self._route_fingerprint()
        if state != self._route_cache_state:
            self._route_cache_state = state
            shared = HostTopology._SHARED_ROUTE_CACHES
            cache = shared.get((self.name, state))
            if cache is None:
                if len(shared) >= HostTopology._SHARED_ROUTE_CACHE_LIMIT:
                    shared.clear()
                cache = shared.setdefault((self.name, state), {})
            self._route_cache = cache
        return self._route_cache.get(key)

    def _route_cache_put(self, key: tuple, paths: tuple) -> None:
        self._route_cache[key] = paths

    # -- NUMA / locality ---------------------------------------------------

    def socket_of(self, device_id: str) -> Optional[int]:
        """NUMA socket index of *device_id*, or ``None`` if unattached."""
        return self.device(device_id).socket

    def same_socket(self, a: str, b: str) -> bool:
        """Whether both devices are attached to the same (non-None) socket."""
        sa, sb = self.socket_of(a), self.socket_of(b)
        return sa is not None and sa == sb

    def sockets(self) -> List[int]:
        """Sorted list of distinct socket indices present in the topology."""
        found = {d.socket for d in self._devices.values() if d.socket is not None}
        return sorted(found)

    # -- graph views -------------------------------------------------------

    @property
    def graph(self) -> nx.MultiGraph:
        """The underlying :class:`networkx.MultiGraph` (ids only)."""
        return self._graph

    def healthy_subgraph(self) -> nx.MultiGraph:
        """A copy of the graph containing only links that are up."""
        sub = nx.MultiGraph()
        sub.add_nodes_from(self._graph.nodes)
        for link in self._links.values():
            if link.up:
                sub.add_edge(link.src, link.dst, key=link.link_id)
        return sub

    def is_connected(self) -> bool:
        """Whether every device can reach every other over up links."""
        if len(self._devices) <= 1:
            return True
        return nx.is_connected(self.healthy_subgraph())

    # -- capacity summaries --------------------------------------------------

    def total_capacity(self, link_class: Optional[LinkClass] = None) -> float:
        """Sum of effective capacities (bytes/s), optionally per link class."""
        return sum(l.effective_capacity for l in self.links(link_class))

    def directed_capacities(self, advertised: bool = False) -> Dict[str, float]:
        """Per-direction constraint capacities, keyed ``<link_id>|fwd/rev``.

        Links are full duplex, so the flow layer enforces capacity per
        direction under these ids (the solver's physical constraint
        namespace).  By default effective (degradation-aware) capacities
        are returned; ``advertised=True`` uses the spec-sheet values.
        """
        capacities: Dict[str, float] = {}
        for link in self._links.values():
            cap = link.capacity if advertised else link.effective_capacity
            capacities[f"{link.link_id}|fwd"] = cap
            capacities[f"{link.link_id}|rev"] = cap
        return capacities

    def describe(self) -> str:
        """Multi-line human-readable summary of the topology."""
        lines = [f"HostTopology {self.name!r}: "
                 f"{len(self._devices)} devices, {len(self._links)} links"]
        by_type: Dict[DeviceType, int] = {}
        for d in self._devices.values():
            by_type[d.device_type] = by_type.get(d.device_type, 0) + 1
        for dtype in sorted(by_type, key=lambda t: t.value):
            lines.append(f"  {dtype.value}: {by_type[dtype]}")
        by_class: Dict[LinkClass, int] = {}
        for l in self._links.values():
            by_class[l.link_class] = by_class.get(l.link_class, 0) + 1
        for lclass in sorted(by_class, key=lambda c: c.value):
            lines.append(f"  links[{lclass.value}]: {by_class[lclass]}")
        return "\n".join(lines)

    def copy(self) -> "HostTopology":
        """Deep-ish copy: new topology with copied Link objects (Devices are
        immutable and shared)."""
        clone = HostTopology(self.name)
        for device in self._devices.values():
            clone.add_device(device)
        for link in self._links.values():
            clone.add_link(
                Link(
                    link_id=link.link_id,
                    src=link.src,
                    dst=link.dst,
                    link_class=link.link_class,
                    capacity=link.capacity,
                    base_latency=link.base_latency,
                    degraded_capacity=link.degraded_capacity,
                    extra_latency=link.extra_latency,
                    up=link.up,
                )
            )
        return clone
