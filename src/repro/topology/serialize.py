"""Topology serialization: dict/JSON round trips.

Operators manage fleets declaratively; a topology that can't be written to
a file can't be versioned, diffed, or shipped to a controller.  The format
is deliberately plain (no pickle): device and link records with explicit
enum values, so other tooling can produce or consume it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..errors import TopologyError
from .elements import Device, DeviceType, Link, LinkClass
from .graph import HostTopology

#: Format version written into every serialized topology.
FORMAT_VERSION = 1


def topology_to_dict(topology: HostTopology) -> Dict[str, Any]:
    """Serialize *topology* into a JSON-safe dict."""
    return {
        "format_version": FORMAT_VERSION,
        "name": topology.name,
        "devices": [
            {
                "device_id": d.device_id,
                "device_type": d.device_type.value,
                "socket": d.socket,
                "attrs": dict(d.attrs),
            }
            for d in topology.devices()
        ],
        "links": [
            {
                "link_id": l.link_id,
                "src": l.src,
                "dst": l.dst,
                "link_class": l.link_class.value,
                "capacity": l.capacity,
                "base_latency": l.base_latency,
                "degraded_capacity": l.degraded_capacity,
                "extra_latency": l.extra_latency,
                "up": l.up,
            }
            for l in topology.links()
        ],
    }


def topology_from_dict(payload: Dict[str, Any]) -> HostTopology:
    """Rebuild a topology serialized with :func:`topology_to_dict`."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise TopologyError(
            f"unsupported topology format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    topology = HostTopology(payload.get("name", "host"))
    try:
        for record in payload["devices"]:
            topology.add_device(
                Device(
                    device_id=record["device_id"],
                    device_type=DeviceType(record["device_type"]),
                    socket=record.get("socket"),
                    attrs=dict(record.get("attrs", {})),
                )
            )
        for record in payload["links"]:
            topology.add_link(
                Link(
                    link_id=record["link_id"],
                    src=record["src"],
                    dst=record["dst"],
                    link_class=LinkClass(record["link_class"]),
                    capacity=float(record["capacity"]),
                    base_latency=float(record["base_latency"]),
                    degraded_capacity=record.get("degraded_capacity"),
                    extra_latency=float(record.get("extra_latency", 0.0)),
                    up=bool(record.get("up", True)),
                )
            )
    except (KeyError, ValueError) as exc:
        raise TopologyError(f"malformed topology payload: {exc}") from exc
    return topology


def topology_to_json(topology: HostTopology, indent: int = 2) -> str:
    """Serialize *topology* to a JSON string."""
    return json.dumps(topology_to_dict(topology), indent=indent)


def topology_from_json(text: str) -> HostTopology:
    """Rebuild a topology from :func:`topology_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TopologyError(f"invalid topology JSON: {exc}") from exc
    return topology_from_dict(payload)


def topology_diff(a: HostTopology, b: HostTopology) -> List[str]:
    """Human-readable structural differences between two topologies.

    Covers devices/links added or removed and per-link parameter changes —
    the view an operator wants before rolling a fleet config.
    """
    changes: List[str] = []
    a_devices = {d.device_id for d in a.devices()}
    b_devices = {d.device_id for d in b.devices()}
    for device_id in sorted(b_devices - a_devices):
        changes.append(f"+ device {device_id}")
    for device_id in sorted(a_devices - b_devices):
        changes.append(f"- device {device_id}")

    a_links = {l.link_id: l for l in a.links()}
    b_links = {l.link_id: l for l in b.links()}
    for link_id in sorted(set(b_links) - set(a_links)):
        changes.append(f"+ link {link_id}")
    for link_id in sorted(set(a_links) - set(b_links)):
        changes.append(f"- link {link_id}")
    for link_id in sorted(set(a_links) & set(b_links)):
        la, lb = a_links[link_id], b_links[link_id]
        for field in ("capacity", "base_latency", "up",
                      "degraded_capacity", "extra_latency"):
            va, vb = getattr(la, field), getattr(lb, field)
            if va != vb:
                changes.append(f"~ link {link_id}.{field}: {va!r} -> {vb!r}")
    return changes
