"""Topology element types: devices, links, and their classifications.

The paper's Figure 1 decomposes a commodity server into end-node devices
(CPU sockets, DIMMs, NICs, GPUs, SSDs, ...) connected by five classes of
intra-host links:

1. inter-socket connects (UPI / Infinity Fabric),
2. intra-socket connects (core mesh, memory bus),
3. PCIe switch upstream links,
4. PCIe switch downstream links,
5. the inter-host network port (the "last hop" boundary).

These classes carry the paper's capacity/latency table and are first-class
here (:class:`LinkClass`) so benchmarks can regenerate that table directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class DeviceType(enum.Enum):
    """Kind of end-node or fabric device in the intra-host network."""

    CPU_SOCKET = "cpu_socket"
    CPU_CORE = "cpu_core"
    MEMORY_CONTROLLER = "memory_controller"
    DIMM = "dimm"
    LLC = "llc"
    PCIE_ROOT_COMPLEX = "pcie_root_complex"
    PCIE_SWITCH = "pcie_switch"
    NIC = "nic"
    GPU = "gpu"
    NVME_SSD = "nvme_ssd"
    FPGA = "fpga"
    CXL_DEVICE = "cxl_device"
    EXTERNAL = "external"  # stand-in for the remote end of the inter-host link


#: Device types that can originate or sink application flows.
ENDPOINT_TYPES = frozenset(
    {
        DeviceType.CPU_SOCKET,
        DeviceType.CPU_CORE,
        DeviceType.DIMM,
        DeviceType.NIC,
        DeviceType.GPU,
        DeviceType.NVME_SSD,
        DeviceType.FPGA,
        DeviceType.CXL_DEVICE,
        DeviceType.EXTERNAL,
    }
)

#: Device types that only forward traffic (fabric elements).
FABRIC_TYPES = frozenset(
    {
        DeviceType.PCIE_ROOT_COMPLEX,
        DeviceType.PCIE_SWITCH,
        DeviceType.MEMORY_CONTROLLER,
        DeviceType.LLC,
    }
)


class LinkClass(enum.Enum):
    """Figure 1's five link classes, plus CXL as a sixth emerging class."""

    INTER_SOCKET = "inter_socket"  # (1) e.g. Intel UPI, AMD Infinity
    INTRA_SOCKET = "intra_socket"  # (2) core mesh / memory bus
    PCIE_UPSTREAM = "pcie_upstream"  # (3) switch <-> root complex
    PCIE_DOWNSTREAM = "pcie_downstream"  # (4) switch <-> device
    INTER_HOST = "inter_host"  # (5) NIC <-> external network
    CXL = "cxl"  # emerging CXL links (§2, [49])


@dataclass(frozen=True)
class Device:
    """An immutable description of one device (node) in the topology.

    Attributes:
        device_id: Unique id, e.g. ``"socket0"`` or ``"nic0"``.
        device_type: The :class:`DeviceType` classification.
        socket: Index of the CPU socket this device is attached to (NUMA
            domain), or ``None`` for devices outside any socket (external).
        attrs: Free-form descriptive attributes (model name, lane count...).
            Behavioural parameters live in ``repro.devices`` models, not here.
    """

    device_id: str
    device_type: DeviceType
    socket: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict, compare=False)

    @property
    def is_endpoint(self) -> bool:
        """Whether application flows may start or end at this device."""
        return self.device_type in ENDPOINT_TYPES

    @property
    def is_fabric(self) -> bool:
        """Whether this device is a pure forwarding element."""
        return self.device_type in FABRIC_TYPES

    def __str__(self) -> str:
        return f"{self.device_id}({self.device_type.value})"


@dataclass
class Link:
    """A bidirectional link (edge) between two devices.

    Capacity is modelled per direction: a flow consumes capacity only in its
    direction of travel, matching full-duplex PCIe/UPI behaviour.

    Attributes:
        link_id: Unique id, e.g. ``"upi0"`` or ``"pcie-sw0-nic0"``.
        src: Device id of one endpoint.
        dst: Device id of the other endpoint.
        link_class: The Figure-1 :class:`LinkClass`.
        capacity: Per-direction capacity in bytes/second.
        base_latency: One-way propagation + processing latency in seconds
            at zero load ("basic latency" in Figure 1's table).
        degraded_capacity: If set, the link silently operates at this reduced
            capacity — models §3.1's silent PCIe-switch failure. ``None``
            means healthy.
        extra_latency: Additional one-way latency injected by a failing
            component on this link (seconds); 0.0 when healthy.
        up: Whether the link is administratively/physically up.
    """

    link_id: str
    src: str
    dst: str
    link_class: LinkClass
    capacity: float
    base_latency: float
    degraded_capacity: Optional[float] = None
    extra_latency: float = 0.0
    up: bool = True

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.link_id!r}: capacity must be > 0")
        if self.base_latency < 0:
            raise ValueError(f"link {self.link_id!r}: base_latency must be >= 0")
        if self.src == self.dst:
            raise ValueError(f"link {self.link_id!r}: self-loop not allowed")

    @property
    def effective_capacity(self) -> float:
        """Capacity actually available: 0 when down, degraded when failing."""
        if not self.up:
            return 0.0
        if self.degraded_capacity is not None:
            return min(self.capacity, self.degraded_capacity)
        return self.capacity

    @property
    def effective_latency(self) -> float:
        """Base latency plus any failure-injected extra latency."""
        return self.base_latency + self.extra_latency

    @property
    def healthy(self) -> bool:
        """Whether the link is up, at full capacity, with no extra latency."""
        return self.up and self.degraded_capacity is None \
            and self.extra_latency == 0.0

    def endpoints(self) -> tuple:
        """Return the ``(src, dst)`` device-id pair."""
        return (self.src, self.dst)

    def other_end(self, device_id: str) -> str:
        """Return the device id on the opposite side of *device_id*."""
        if device_id == self.src:
            return self.dst
        if device_id == self.dst:
            return self.src
        raise ValueError(
            f"device {device_id!r} is not an endpoint of link {self.link_id!r}"
        )

    def __str__(self) -> str:
        return f"{self.link_id}[{self.src}<->{self.dst} {self.link_class.value}]"
