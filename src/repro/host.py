"""The :class:`Host` session facade: one object for a managed host.

The historical quickstart wired four objects by hand::

    topology = cascade_lake_2s()
    engine = Engine()
    network = FabricNetwork(topology, engine)
    manager = HostNetworkManager(network)

:class:`Host` bundles that construction behind keyword-only configuration
and delegates the common verbs (``run_until``, ``submit``, ``release``,
``shutdown``), so a session is::

    host = Host(cascade_lake_2s())
    host.submit(pipe("kv", "tenantA", src="nic0", dst="dimm0-0",
                     bandwidth=Gbps(100)))
    host.run_until(1.0)

The constituent objects stay public attributes (``host.engine``,
``host.network``, ``host.manager``, ``host.topology``) — the facade adds
no state of its own, so advanced code can keep reaching inside.
"""

from __future__ import annotations

from typing import List, Optional, Union

from .core.intents import PerformanceTarget
from .core.manager import HostNetworkManager, Placement
from .core.scheduler import Scheduler
from .sim.engine import Engine
from .sim.latency import LatencyModel
from .sim.network import FabricNetwork
from .sim.solver import SolverStats
from .topology.graph import HostTopology
from .trace import TraceConfig, Tracer, start_tracing
from .units import us


class Host:
    """A simulated managed host: engine + fabric + resource manager.

    Args:
        topology: The host topology to simulate.
        start: Initial simulated time (seconds).
        latency_model: Queueing model override for the fabric.
        coalesce_recompute: Coalesce same-instant fabric re-solves (see
            :class:`~repro.sim.network.FabricNetwork`).
        array_crossover: Component size at which the fair-share solver
            switches from the scalar water-filling core to the
            numpy-vectorized one (``None`` keeps the measured default;
            see :mod:`repro.sim.arrays`).
        managed: Construct the :class:`HostNetworkManager` (default).
            ``managed=False`` gives a bare engine + fabric for unmanaged
            experiments; ``manager`` access then raises.
        trace: Tracing for this session: ``True`` enables the process-wide
            tracer (:data:`repro.trace.TRACER`) with its current
            configuration; a :class:`~repro.trace.TraceConfig` reconfigures
            it first.  The tracer is process-global (one trace per run, as
            with Perfetto); it is exposed as :attr:`tracer`.
        resilience: Arm closed-loop failure recovery: ``True`` uses
            default :class:`~repro.resilience.controller.RecoveryConfig`;
            a config instance tunes it.  Builds and starts a
            :class:`~repro.monitor.monitor.HostMonitor` (:attr:`monitor`),
            a :class:`~repro.resilience.controller.RecoveryController`
            (:attr:`recovery`), and an
            :class:`~repro.core.admission.AdmissionRetryQueue`
            (:attr:`retry`) kicked on every release.
        slo: Arm continuous latency observability: ``True`` uses the
            default :class:`~repro.slo.probe.SloConfig`; a config (or a
            single :class:`~repro.slo.objective.SloObjective`) tunes it.
            Builds and starts a sampled
            :class:`~repro.slo.probe.LatencyProbe` (:attr:`slo_probe`)
            over the placement ledger; when ``resilience=`` is also
            armed, burn-rate alerts feed
            :meth:`~repro.resilience.controller.RecoveryController.
            handle_latency_alert` (re-place off the hot path, else
            degrade) — the host-local half of the §16 closed loop.
        scheduler / headroom / work_conserving / arbiter_period /
        decision_latency / candidate_paths / auto_start_arbiter:
            Forwarded to :class:`HostNetworkManager`.
    """

    def __init__(
        self,
        topology: HostTopology,
        *,
        start: float = 0.0,
        latency_model: Optional[LatencyModel] = None,
        coalesce_recompute: bool = False,
        array_crossover: Optional[int] = None,
        managed: bool = True,
        trace: Union[bool, TraceConfig, None] = None,
        resilience=None,
        slo=None,
        scheduler: Optional[Scheduler] = None,
        headroom: float = 0.9,
        work_conserving: bool = True,
        arbiter_period: float = 0.001,
        decision_latency: float = us(10),
        candidate_paths: int = 4,
        auto_start_arbiter: bool = True,
    ) -> None:
        self.topology = topology
        self.tracer: Optional[Tracer] = None
        if trace:
            self.tracer = start_tracing(
                trace if isinstance(trace, TraceConfig) else None
            )
        self.engine = Engine(start=start)
        self.network = FabricNetwork(
            topology, self.engine,
            latency_model=latency_model,
            coalesce_recompute=coalesce_recompute,
            array_crossover=array_crossover,
        )
        self._manager: Optional[HostNetworkManager] = None
        if managed:
            self._manager = HostNetworkManager(
                self.network,
                scheduler=scheduler,
                headroom=headroom,
                work_conserving=work_conserving,
                arbiter_period=arbiter_period,
                decision_latency=decision_latency,
                candidate_paths=candidate_paths,
                auto_start_arbiter=auto_start_arbiter,
            )
        self.monitor = None
        self.recovery = None
        self.retry = None
        self.slo_probe = None
        if resilience:
            self._enable_resilience(resilience)
        if slo:
            self._enable_slo(slo)

    def _enable_resilience(self, resilience) -> None:
        """Build and arm the monitor / recovery / retry loop.

        *resilience* is ``True`` (defaults) or a
        :class:`~repro.resilience.controller.RecoveryConfig`.  Imported
        lazily: the chaos harness imports :class:`Host`, so a top-level
        import here would be circular.
        """
        from .core.admission import AdmissionRetryQueue
        from .monitor.monitor import HostMonitor
        from .resilience.controller import RecoveryConfig, RecoveryController

        if self._manager is None:
            raise RuntimeError(
                "resilience requires a managed host (managed=True)"
            )
        config = (resilience if isinstance(resilience, RecoveryConfig)
                  else RecoveryConfig())
        if config.monitor:
            self.monitor = HostMonitor(self.network, seed=config.seed)
            self.monitor.start()
            self.monitor.schedule_checks(config.monitor_check_period)
        self.recovery = RecoveryController(
            self._manager, monitor=self.monitor, config=config,
        )
        self.recovery.start()
        if config.retry:
            self.retry = AdmissionRetryQueue(
                self.engine, self._manager.submit,
                max_parked=config.retry_max_parked, seed=config.seed,
            )
            self._manager.on_release(lambda _intent_id: self.retry.kick())

    def _enable_slo(self, slo) -> None:
        """Build and arm the sampled latency probe.

        *slo* is ``True`` (defaults), an
        :class:`~repro.slo.probe.SloConfig`, or a single
        :class:`~repro.slo.objective.SloObjective`.  Imported lazily,
        like resilience, to keep :class:`Host` import-light.  The
        probe's local burn-rate evaluation only runs when a listener is
        attached — i.e. when this host also runs a recovery controller;
        fleet hosts leave evaluation to the parent-side
        :class:`~repro.slo.monitor.FleetSloMonitor`.
        """
        from .slo.probe import LatencyProbe, normalize_slo

        if self._manager is None:
            raise RuntimeError("slo requires a managed host (managed=True)")
        config = normalize_slo(slo)
        self.slo_probe = LatencyProbe(self.network, self._manager, config)
        self.slo_probe.start()
        if self.recovery is not None:
            self.slo_probe.on_alert(self.recovery.handle_latency_alert)

    # -- constituent access --------------------------------------------------

    @property
    def manager(self) -> HostNetworkManager:
        """The resource manager (raises when built with ``managed=False``)."""
        if self._manager is None:
            raise RuntimeError(
                "Host was created with managed=False; no manager exists"
            )
        return self._manager

    @property
    def is_managed(self) -> bool:
        """Whether this host carries a resource manager."""
        return self._manager is not None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.engine.now

    @property
    def solver_stats(self) -> SolverStats:
        """The fabric's resident-solver cost counters (no reaching into
        ``host.network`` needed)."""
        return self.network.solver_stats

    @property
    def solver_paths(self) -> "dict[str, int]":
        """How many water-filling passes each core has run.

        Returns ``{"scalar": n, "array": m}`` from the resident solver's
        counters — the quick way to confirm which code path a workload
        actually exercised (tiny components stay scalar below the
        crossover; large ones vectorize).
        """
        stats = self.network.solver_stats
        return {"scalar": stats.scalar_fills, "array": stats.array_fills}

    @property
    def recompute_count(self) -> int:
        """How many times the fabric re-solved rates this session."""
        return self.network.recompute_count

    # -- delegation ----------------------------------------------------------

    def run_until(self, t: float, max_events: Optional[int] = None) -> int:
        """Advance simulated time to *t* (see :meth:`Engine.run_until`)."""
        return self.engine.run_until(t, max_events=max_events)

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the event queue (see :meth:`Engine.run`)."""
        return self.engine.run(max_events=max_events)

    def submit(self, intent: PerformanceTarget) -> Placement:
        """Submit a performance intent to the manager."""
        return self.manager.submit(intent)

    def try_submit(self, intent: PerformanceTarget) -> Optional[Placement]:
        """Like :meth:`submit` but returns ``None`` instead of raising."""
        return self.manager.try_submit(intent)

    def submit_with_retry(self, intent: PerformanceTarget,
                          deadline: Optional[float] = None,
                          ) -> Optional[Placement]:
        """Submit via the retry queue: park-and-retry instead of failing.

        Returns the placement on immediate admission, ``None`` when the
        intent was parked (it will be re-tried on backoff and on every
        release) or shed.  Requires ``resilience=`` with retry enabled.
        """
        if self.retry is None:
            raise RuntimeError(
                "no retry queue: construct Host with resilience=True "
                "(or a RecoveryConfig with retry enabled)"
            )
        return self.retry.submit(intent, deadline=deadline)

    def release(self, intent_id: str) -> None:
        """Withdraw an admitted intent."""
        self.manager.release(intent_id)

    def register_tenant(self, tenant_id: str) -> None:
        """Register a tenant with the manager."""
        self.manager.register_tenant(tenant_id)

    def placements(self) -> List[Placement]:
        """All current placements."""
        return self.manager.placements()

    def shutdown(self) -> None:
        """Stop recovery, retry, monitoring, probing, and the arbiter."""
        if self.slo_probe is not None:
            self.slo_probe.stop()
        if self.recovery is not None:
            self.recovery.stop()
        if self.retry is not None:
            self.retry.stop()
        if self.monitor is not None:
            self.monitor.stop()
        if self._manager is not None:
            self._manager.shutdown()

    def describe(self) -> str:
        """Human-readable session summary."""
        lines = [f"Host on {self.topology.name!r} @ t={self.now:.6f}s: "
                 f"{len(self.network.active_flows())} active flows"]
        if self._manager is not None:
            lines.append(self._manager.describe())
        else:
            lines.append("  (unmanaged: no resource manager)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        managed = (f"tenants={len(self._manager.tenants)}, "
                   f"intents={len(self._manager.placements())}"
                   if self._manager is not None else "unmanaged")
        traced = ", traced" if self.tracer is not None else ""
        return (f"Host({self.topology.name!r}, t={self.now:.6f}s, "
                f"flows={len(self.network.active_flows())}, "
                f"recomputes={self.recompute_count}, {managed}{traced})")
