"""hostnet — a manageable intra-host network.

A faithful, laptop-scale reproduction of *"Towards a Manageable Intra-Host
Network"* (Kong, Lou, Bai, Kim, Zhuo — HotOS '23): a flow-level simulator
of commodity-server intra-host fabrics (PCIe, memory buses, UPI), plus the
two building blocks the paper proposes —

* a **fine-grained monitoring system** (:mod:`repro.telemetry`,
  :mod:`repro.monitor`, :mod:`repro.diagnostics`), and
* a **holistic resource manager** (:mod:`repro.core`).

Quick start::

    from repro import Host, cascade_lake_2s, pipe, Gbps

    host = Host(cascade_lake_2s())
    host.submit(pipe("kv", "tenantA", src="nic0", dst="dimm0-0",
                     bandwidth=Gbps(100)))
    host.run_until(1.0)

(The constituent ``Engine`` / ``FabricNetwork`` / ``HostNetworkManager``
objects remain public — ``host.engine`` etc. — and can still be wired by
hand.)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
experiment suite.
"""

from . import units
from .baselines import (
    HostnetPolicy,
    IsolationPolicy,
    RdtLikePolicy,
    StaticPartitionPolicy,
    UnmanagedPolicy,
)
from .core import (
    DynamicArbiter,
    HostNetworkManager,
    IntentKind,
    PerformanceTarget,
    Placement,
    VirtualHostView,
    hose,
    interpret,
    migrate_tenant,
    pipe,
)
from .devices import (
    DdioCache,
    HostConfig,
    IommuModel,
    NumaPolicy,
    PcieSwitchModel,
    RdmaNicModel,
    tlp_efficiency,
)
from .diagnostics import (
    HostShark,
    hostperf,
    hostping,
    hosttrace,
    troubleshoot,
)
from .errors import HostNetError
from .fleet import (
    BestFitHeadroomPolicy,
    ClusterScheduler,
    FirstFitPolicy,
    Fleet,
    FleetTelemetry,
    MigrationPlanner,
    PlacementPolicy,
    SpreadByTenantPolicy,
    make_policy,
)
from .host import Host
from .monitor import (
    FailureInjector,
    HeartbeatMesh,
    HostMonitor,
    localize,
)
from .slo import (
    FleetSloMonitor,
    LatencyHistogram,
    LatencyProbe,
    LatencyRegressionConfig,
    LatencyRegressionReport,
    SloAlert,
    SloConfig,
    SloObjective,
    run_latency_regression,
)
from .sim import (
    SYSTEM_TENANT,
    Engine,
    FabricNetwork,
    Flow,
    FlowState,
    IncrementalMaxMinSolver,
    LatencyModel,
    SolverStats,
)
from .resilience import (
    AdmissionRetryQueue,
    ChaosConfig,
    ChaosReport,
    RecoveryConfig,
    RecoveryController,
    check_invariants,
    run_campaign,
)
from .stats import percentile, summarize
from .telemetry import (
    CounterBank,
    CounterSource,
    MetricStore,
    TelemetryCollector,
    utilization_table,
)
from .topology import (
    Device,
    DeviceType,
    HostTopology,
    Link,
    LinkClass,
    Path,
    TopologyBuilder,
    cascade_lake_2s,
    cxl_host,
    dgx_like,
    epyc_like_1s,
    load_preset,
    minimal_host,
    shortest_path,
    widest_path,
)
from .trace import (
    TRACER,
    TraceConfig,
    Tracer,
    start_tracing,
    stop_tracing,
    tracing,
)
from .units import GBps, Gbps, ms, ns, us
from .workloads import (
    KvStoreApp,
    MaliciousFloodApp,
    MlTrainingApp,
    NvmeScanApp,
    RdmaLoopbackApp,
    Tenant,
    TenantRegistry,
    TraceGenerator,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "units",
    # errors
    "HostNetError",
    # topology
    "Device",
    "DeviceType",
    "Link",
    "LinkClass",
    "HostTopology",
    "TopologyBuilder",
    "Path",
    "shortest_path",
    "widest_path",
    "minimal_host",
    "cascade_lake_2s",
    "dgx_like",
    "epyc_like_1s",
    "cxl_host",
    "load_preset",
    # sim
    "Engine",
    "FabricNetwork",
    "Flow",
    "FlowState",
    "IncrementalMaxMinSolver",
    "SolverStats",
    "LatencyModel",
    "SYSTEM_TENANT",
    # session facade
    "Host",
    # fleet
    "Fleet",
    "FleetTelemetry",
    "ClusterScheduler",
    "MigrationPlanner",
    "PlacementPolicy",
    "FirstFitPolicy",
    "BestFitHeadroomPolicy",
    "SpreadByTenantPolicy",
    "make_policy",
    # devices
    "HostConfig",
    "NumaPolicy",
    "DdioCache",
    "RdmaNicModel",
    "IommuModel",
    "PcieSwitchModel",
    "tlp_efficiency",
    # telemetry
    "CounterSource",
    "CounterBank",
    "MetricStore",
    "TelemetryCollector",
    "utilization_table",
    # monitor
    "HostMonitor",
    "HeartbeatMesh",
    "FailureInjector",
    "localize",
    # diagnostics
    "hostping",
    "hosttrace",
    "hostperf",
    "HostShark",
    "troubleshoot",
    # core
    "PerformanceTarget",
    "IntentKind",
    "pipe",
    "hose",
    "interpret",
    "HostNetworkManager",
    "Placement",
    "DynamicArbiter",
    "VirtualHostView",
    "migrate_tenant",
    # slo
    "SloObjective",
    "SloConfig",
    "SloAlert",
    "LatencyHistogram",
    "LatencyProbe",
    "FleetSloMonitor",
    "LatencyRegressionConfig",
    "LatencyRegressionReport",
    "run_latency_regression",
    # resilience
    "AdmissionRetryQueue",
    "ChaosConfig",
    "ChaosReport",
    "RecoveryConfig",
    "RecoveryController",
    "check_invariants",
    "run_campaign",
    # baselines
    "IsolationPolicy",
    "UnmanagedPolicy",
    "StaticPartitionPolicy",
    "RdtLikePolicy",
    "HostnetPolicy",
    # workloads
    "Tenant",
    "TenantRegistry",
    "KvStoreApp",
    "MlTrainingApp",
    "RdmaLoopbackApp",
    "NvmeScanApp",
    "MaliciousFloodApp",
    "TraceGenerator",
    # trace
    "TRACER",
    "Tracer",
    "TraceConfig",
    "start_tracing",
    "stop_tracing",
    "tracing",
    # stats & units
    "percentile",
    "summarize",
    "Gbps",
    "GBps",
    "ns",
    "us",
    "ms",
]
