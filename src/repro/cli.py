"""Command-line interface: ``python -m repro <command>``.

Operator-style entry points over the simulated host, mirroring how the
paper's tooling would be driven in production:

* ``describe [--preset P]`` — print a preset's topology summary;
* ``ping SRC DST`` — hostping between two devices;
* ``trace SRC DST`` — hosttrace with per-hop latency attribution;
* ``trace SCENARIO`` — run a canned scenario with the
  :mod:`repro.trace` profiler enabled and write a Perfetto-loadable
  ``trace_event`` JSON (open it at ``ui.perfetto.dev``);
* ``perf SRC DST`` — hostperf achievable-bandwidth probe;
* ``drill [--failure ...]`` — inject a failure under load, run the
  monitor, print detection + localization + diagnosis;
* ``chaos run [--seed N --faults K]`` — seeded randomized fault campaign
  against a resilient host, audited by the invariant oracle (exit 1 on
  any violation);
* ``fleet run [--hosts N --policy P --seed S --clock C]`` — drive a
  multi-host fleet through a seeded churn workload under the cluster
  scheduler (``--clock event`` by default; ``lockstep`` for the
  reference discipline; ``--parallel N`` shards the host simulations
  across N worker processes with bit-identical outcomes);
* ``fleet replay [--trace FILE --hosts N --policy P --compare]`` —
  replay a datacenter trace (Alibaba-style CSV/JSON, or a seeded
  synthesized one when no file is given) against the fleet and print a
  rejection/JCT/SLO report, optionally comparing every policy on
  byte-identical load and writing a machine-readable JSON report;
  ``--faults K`` injects a seeded host-fault schedule during the
  replay, turning the report into an SLO-under-failure study;
  ``--slo`` arms continuous latency probes and appends the burn-rate
  monitor's report;
* ``fleet slo [--hosts N --seed S --clock C --parallel N]`` — the
  seeded latency-regression scenario: a host's links silently degrade
  under churn, the multi-window burn-rate alert names it, and the
  fleet live-migrates its sessions until attainment recovers (exit 1
  when the injected regression fails to produce a committed
  latency-driven migration);
* ``fleet chaos [--hosts N --seed S --fault-rate R]`` — seeded
  fleet-scale fault campaign (crashes, degrades, partitions) under
  churn with self-healing evacuation, audited by the fleet invariant
  oracle (exit 1 on any violation);
* ``fleet describe [--hosts N]`` — print a fresh fleet's layout;
* ``presets`` — list available host presets.

All commands run against a freshly built simulated host (optionally with
background load), so they work anywhere the library is installed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .diagnostics import hostperf, hostping, hosttrace, troubleshoot
from .monitor import FailureInjector, HostMonitor
from .sim import Engine, FabricNetwork
from .topology import PRESETS, load_preset
from .units import us
from .workloads import KvStoreApp


def _build_network(preset: str, load: bool) -> FabricNetwork:
    network = FabricNetwork(load_preset(preset), Engine())
    if load:
        from .topology.elements import DeviceType

        nics = network.topology.devices(DeviceType.NIC)
        dimms = network.topology.devices(DeviceType.DIMM)
        if nics and dimms:
            app = KvStoreApp(network, "bg", nic=nics[0].device_id,
                             dimm=dimms[0].device_id, request_rate=10_000,
                             seed=0)
            app.start()
            network.engine.run_until(0.05)
    return network


def cmd_presets(_args: argparse.Namespace) -> int:
    """List the shipped host presets with their sizes."""
    for name in sorted(PRESETS):
        topo = load_preset(name)
        print(f"{name:<18} {len(topo.devices())} devices, "
              f"{len(topo.links())} links")
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    """Print the selected preset's topology summary or ASCII tree."""
    topology = load_preset(args.preset)
    if args.tree:
        from .topology.render import render_tree

        print(render_tree(topology))
    else:
        print(topology.describe())
    return 0


def cmd_ping(args: argparse.Namespace) -> int:
    """hostping between two devices on a fresh simulated host."""
    network = _build_network(args.preset, args.load)
    print(hostping(network, args.src, args.dst, count=args.count).describe())
    return 0


#: Canned workloads for ``trace SCENARIO`` (profiling-trace mode).
TRACE_SCENARIOS = ("quickstart", "churn")


def cmd_trace(args: argparse.Namespace) -> int:
    """Two modes sharing one verb, like ``perf trace``:

    * ``trace SRC DST`` — hosttrace per-hop latency attribution;
    * ``trace SCENARIO`` — record a profiling trace of the simulator
      itself while it runs a canned scenario.
    """
    if args.dst is not None:
        network = _build_network(args.preset, args.load)
        print(hosttrace(network, args.src, args.dst).describe())
        return 0
    if args.src not in TRACE_SCENARIOS:
        print(f"trace: {args.src!r} is neither 'SRC DST' devices nor a "
              f"scenario ({'/'.join(TRACE_SCENARIOS)})", file=sys.stderr)
        return 2
    return _cmd_trace_scenario(args)


def _cmd_trace_scenario(args: argparse.Namespace) -> int:
    """Run a scenario under the tracer; write Perfetto JSON + summaries."""
    from .host import Host
    from .monitor import HostMonitor
    from .topology.elements import DeviceType
    from .topology.routing import shortest_path
    from .trace import (
        TRACER,
        TraceConfig,
        flame_summary,
        profile,
        render_profile,
        stop_tracing,
        write_chrome_trace,
    )
    from .units import Gbps

    topology = load_preset(args.preset)
    nics = topology.devices(DeviceType.NIC)
    dimms = topology.devices(DeviceType.DIMM)
    if not nics or not dimms:
        print(f"preset {args.preset!r} lacks a NIC/DIMM pair to load",
              file=sys.stderr)
        return 1
    nic, dimm = nics[0].device_id, dimms[0].device_id

    TRACER.configure(TraceConfig())
    host = Host(topology, coalesce_recompute=True, decision_latency=0.0,
                trace=True)
    monitor = HostMonitor(host.network)
    monitor.start()
    try:
        from .workloads import KvStoreApp, RdmaLoopbackApp

        if args.src == "quickstart":
            # The README walkthrough: a KV store, a loopback aggressor,
            # and the intent that protects the former from the latter.
            KvStoreApp(host.network, "kv-tenant", nic=nic, dimm=dimm,
                       request_rate=20_000, seed=1).start()
            RdmaLoopbackApp(host.network, "loopback-tenant",
                            nic=nic, dimm=dimm).start()
            host.register_tenant("loopback-tenant")
            host.submit(pipe_intent("kv-guarantee", "kv-tenant",
                                    nic, dimm, Gbps(100)))
        else:  # churn: short finite transfers arriving every millisecond
            path = shortest_path(topology, nic, dimm)
            host.submit(pipe_intent("churn-floor", "churn-tenant",
                                    nic, dimm, Gbps(50)))

            def spawn() -> None:
                host.network.start_transfer(
                    "churn-tenant", path, size=500_000.0,
                    demand=Gbps(80), tags={"app": "churn"},
                )

            host.engine.schedule_every(0.001, spawn, label="churn-spawn",
                                       first_delay=0.0)
        host.run_until(args.sim_seconds)
        monitor.check()
    finally:
        stop_tracing()
        monitor.stop()
        host.shutdown()

    out = args.out or f"trace-{args.src}.json"
    events = write_chrome_trace(TRACER, out)
    categories = ", ".join(sorted(TRACER.categories()))
    print(f"recorded {len(TRACER)} records ({events} trace events) "
          f"over {args.sim_seconds}s simulated; categories: {categories}")
    print(f"wrote {out} — open it at https://ui.perfetto.dev")
    print()
    print(flame_summary(TRACER))
    print()
    print(render_profile(profile(TRACER)))
    return 0


def pipe_intent(intent_id: str, tenant: str, src: str, dst: str,
                bandwidth: float):
    """A bidirectional pipe intent (tiny helper for the scenarios)."""
    from .core import pipe

    return pipe(intent_id, tenant, src=src, dst=dst, bandwidth=bandwidth,
                bidirectional=True)


def cmd_perf(args: argparse.Namespace) -> int:
    """hostperf achievable-bandwidth probe."""
    network = _build_network(args.preset, args.load)
    print(hostperf(network, args.src, args.dst,
                   duration=args.duration).describe())
    return 0


def cmd_drill(args: argparse.Namespace) -> int:
    """Inject a failure under load; print detection, localization, and
    the automated diagnosis."""
    network = _build_network(args.preset, load=True)
    monitor = HostMonitor(network)
    monitor.start()
    network.engine.run_until(network.engine.now + 0.05)
    monitor.record_baseline()

    injector = FailureInjector(network)
    if args.failure == "switch":
        from .topology.elements import DeviceType

        switches = network.topology.devices(DeviceType.PCIE_SWITCH)
        if not switches:
            print("preset has no PCIe switch to fail", file=sys.stderr)
            return 1
        failure = injector.degrade_switch(switches[0].device_id,
                                          capacity_factor=0.1,
                                          extra_latency=us(5))
    elif args.failure == "link-down":
        link = network.topology.links()[0]
        failure = injector.fail_link(link.link_id)
    else:
        link = network.topology.links()[0]
        failure = injector.degrade_link(link.link_id, capacity_factor=0.1,
                                        extra_latency=us(5))
    print(f"[injected] {failure.kind.value} on {failure.target}")

    network.engine.run_until(network.engine.now + 0.1)
    report = monitor.check()
    print(report.describe())
    suspect = report.top_link_suspect()
    if suspect is not None:
        link = network.topology.link(suspect.element_id)
        diagnosis = troubleshoot(network, link.src, link.dst)
        print(diagnosis.describe())
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``chaos run``: a seeded fault campaign with the invariant oracle.

    Exit code 0 when every invariant held and the fabric restored
    bit-exact; 1 when the campaign found violations; 2 on bad arguments.
    """
    if args.faults < 1:
        print(f"chaos: --faults must be >= 1, got {args.faults}",
              file=sys.stderr)
        return 2
    if args.intents < 1:
        print(f"chaos: --intents must be >= 1, got {args.intents}",
              file=sys.stderr)
        return 2
    from .resilience import ChaosConfig, run_campaign

    config = ChaosConfig(seed=args.seed, faults=args.faults,
                         workload_intents=args.intents)
    report = run_campaign(load_preset(args.preset), config)
    print(report.describe())
    if args.events:
        for event in report.events:
            print(f"  {event.time:.6f}s {event.kind:<7} "
                  f"{event.failure_kind} on {event.target}")
    return 0 if report.passed else 1


def _clamp_parallel(args: argparse.Namespace) -> Optional[int]:
    """Validate ``--parallel`` against the machine.

    Returns the (possibly clamped) worker count, ``None`` for serial.
    Raises SystemExit(2) via the caller's return path for nonsense; a
    request beyond ``os.cpu_count()`` is clamped with a warning — more
    workers than cores only adds scheduling noise.
    """
    import os

    parallel = getattr(args, "parallel", None)
    if parallel is None:
        return None
    cores = os.cpu_count() or 1
    if parallel > cores:
        print(f"fleet: --parallel {parallel} exceeds the "
              f"{cores} available core(s); clamping to {cores}",
              file=sys.stderr)
        return cores
    return parallel


def _make_fleet(args: argparse.Namespace):
    """A Fleet from the shared ``fleet`` CLI options."""
    from .fleet import Fleet

    return Fleet(
        args.preset,
        hosts=args.hosts,
        policy=args.policy,
        max_attempts=args.max_attempts,
        rebalance_threshold=args.rebalance_threshold,
        clock=args.clock,
        parallel=_clamp_parallel(args),
    )


def cmd_fleet(args: argparse.Namespace) -> int:
    """``fleet run``: seeded churn against a multi-host cluster;
    ``fleet replay``: datacenter-trace replay with an SLO/JCT report;
    ``fleet slo``: the seeded latency-regression closed-loop scenario;
    ``fleet chaos``: seeded fault campaign with the fleet oracle;
    ``fleet describe``: print a fresh fleet's layout."""
    if args.hosts < 1:
        print(f"fleet: --hosts must be >= 1, got {args.hosts}",
              file=sys.stderr)
        return 2
    if getattr(args, "parallel", None) is not None and args.parallel < 1:
        print(f"fleet: --parallel must be >= 1, got {args.parallel}",
              file=sys.stderr)
        return 2
    if args.fleet_command == "chaos":
        return _cmd_fleet_chaos(args)
    if args.fleet_command == "slo":
        return _cmd_fleet_slo(args)
    if args.fleet_command == "describe":
        fleet = _make_fleet(args)
        try:
            print(fleet.describe())
        finally:
            fleet.shutdown()
        return 0
    if args.fleet_command == "replay":
        return _cmd_fleet_replay(args)

    from .fleet import FleetChurnConfig, run_churn

    config = FleetChurnConfig(seed=args.seed, horizon=args.horizon,
                              arrival_rate=args.arrival_rate,
                              drain=args.drain)
    fleet = _make_fleet(args)
    try:
        report = run_churn(fleet, config)
        print(report.describe())
        print()
        print(fleet.describe())
    finally:
        fleet.shutdown()
    return 0


def _cmd_fleet_chaos(args: argparse.Namespace) -> int:
    """``fleet chaos``: one seeded fleet fault campaign, oracle-audited.

    ``--fault-rate`` is faults per simulated second; the schedule length
    is ``max(1, round(rate * horizon))``.  Exit 0 when the invariant
    oracle stayed green throughout, 1 on any violation, 2 on bad args.
    """
    if args.fault_rate <= 0:
        print(f"fleet chaos: --fault-rate must be > 0, "
              f"got {args.fault_rate}", file=sys.stderr)
        return 2
    if args.horizon <= 0:
        print(f"fleet chaos: --horizon must be > 0, got {args.horizon}",
              file=sys.stderr)
        return 2
    from .errors import FleetError
    from .fleet import FleetChaosConfig, run_fleet_campaign

    faults = max(1, round(args.fault_rate * args.horizon))
    try:
        config = FleetChaosConfig(
            seed=args.seed, hosts=args.hosts, topology=args.preset,
            policy=args.policy, clock=args.clock,
            failure_domains=args.domains, horizon=args.horizon,
            faults=faults, parallel=_clamp_parallel(args),
        )
    except FleetError as exc:
        print(f"fleet chaos: {exc}", file=sys.stderr)
        return 2
    report = run_fleet_campaign(config)
    print(report.describe())
    if args.report is not None:
        import json

        payload = dict(report.outcome_dict(), clock=args.clock,
                       hosts=args.hosts, passed=report.passed)
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.report}")
    return 0 if report.passed else 1


def _cmd_fleet_slo(args: argparse.Namespace) -> int:
    """``fleet slo``: one seeded latency-regression run, closed loop.

    Exit 0 when the loop closed (or no regression was injected), 1 when
    an injected regression produced no committed latency-driven
    migration, 2 on bad arguments.
    """
    from .errors import SloError
    from .slo import LatencyRegressionConfig, run_latency_regression
    from .units import us

    try:
        config = LatencyRegressionConfig(
            seed=args.seed, hosts=args.hosts, horizon=args.horizon,
            arrival_rate=args.arrival_rate, bound=us(args.bound),
            probe_period=args.probe_period,
            sample_stride=args.sample_stride,
            degrade_at=args.degrade_at,
            degrade_factor=args.degrade_factor,
            restore_at=args.restore_at, max_moves=args.max_moves)
    except SloError as exc:
        print(f"fleet slo: {exc}", file=sys.stderr)
        return 2
    report = run_latency_regression(
        config, parallel=_clamp_parallel(args), clock=args.clock)
    print(report.describe())
    injected = args.degrade_factor < 1.0
    closed = report.first_migration_time is not None
    return 0 if (not injected or closed) else 1


def _fault_schedule(args: argparse.Namespace, horizon: float):
    """A seeded fault schedule over the replay fleet's host ids.

    Built from a standalone :class:`FleetHealth` (same ``hostNN`` naming
    the fleet uses), so ``--compare`` replays the identical storm
    against every policy's fresh fleet.
    """
    from .fleet import FleetFaultConfig, FleetHealth, generate_fault_schedule

    health = FleetHealth([f"host{i:02d}" for i in range(args.hosts)],
                         domains=args.domains)
    config = FleetFaultConfig(seed=args.seed, faults=args.faults,
                              horizon=horizon)
    return generate_fault_schedule(config, health)


def _cmd_fleet_replay(args: argparse.Namespace) -> int:
    """``fleet replay``: one trace, one (or every) policy, one report."""
    from .workloads.cluster_traces import (
        IngestConfig,
        ReplayConfig,
        SynthTraceConfig,
        compare_policies,
        load_trace,
        replay_trace,
        synthesize_trace,
    )

    from .errors import WorkloadError

    if args.trace is not None:
        try:
            trace = load_trace(
                args.trace,
                IngestConfig(time_scale=args.time_scale),
                fmt=args.format,
            )
        except (OSError, WorkloadError) as exc:
            print(f"fleet replay: cannot load {args.trace!r}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        trace = synthesize_trace(SynthTraceConfig(
            seed=args.seed, tasks=args.tasks, tenants=args.tenants,
            horizon=args.horizon,
        ))
    print(trace.describe())

    config = ReplayConfig(slo_stretch=args.slo_stretch,
                          retry=not args.no_retry,
                          samples=args.samples)
    schedule = None
    if args.faults > 0:
        if args.hosts < 2:
            print("fleet replay: --faults needs --hosts >= 2 (somewhere "
                  "to evacuate to)", file=sys.stderr)
            return 2
        schedule = _fault_schedule(args, trace.horizon)
        print()
        print(schedule.describe())
    if args.slo and args.compare:
        print("fleet replay: --slo reports on one fleet; it does not "
              "combine with --compare", file=sys.stderr)
        return 2
    if args.compare:
        from .fleet import PLACEMENT_POLICIES

        comparison = compare_policies(
            trace, sorted(PLACEMENT_POLICIES),
            topology=args.preset, hosts=args.hosts, clock=args.clock,
            max_attempts=args.max_attempts, config=config,
            faults=schedule,
            rebalance_threshold=args.rebalance_threshold,
            failure_domains=args.domains,
            parallel=_clamp_parallel(args),
        )
        print()
        print(comparison.describe())
        payload = comparison.to_json()
    else:
        from .fleet import Fleet

        slo = None
        if args.slo:
            from .slo import SloConfig
            from .units import us

            slo = SloConfig.default(bound=us(args.slo_bound))
        fleet = Fleet(args.preset, hosts=args.hosts, policy=args.policy,
                      clock=args.clock, max_attempts=args.max_attempts,
                      rebalance_threshold=args.rebalance_threshold,
                      failure_domains=args.domains,
                      parallel=_clamp_parallel(args), slo=slo)
        try:
            report = replay_trace(fleet, trace, config, faults=schedule)
            slo_text = (fleet.slo.describe()
                        if fleet.slo is not None else None)
        finally:
            fleet.shutdown()
        print()
        print(report.describe())
        if slo_text is not None:
            print()
            print(slo_text)
        payload = report.to_json()
    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"\nwrote {args.report}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="hostnet: manageable intra-host network tooling "
                    "(simulated)",
    )
    parser.add_argument("--preset", default="cascade_lake_2s",
                        choices=sorted(PRESETS), help="host preset")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("presets", help="list host presets")
    describe = sub.add_parser("describe", help="print the preset's topology")
    describe.add_argument("--tree", action="store_true",
                          help="render as an ASCII tree with link specs")

    for name, helptext in (("ping", "round-trip latency probe"),
                           ("trace", "per-hop latency breakdown (SRC DST) "
                                     "or profile a scenario (quickstart|"
                                     "churn) into Perfetto JSON"),
                           ("perf", "achievable bandwidth probe")):
        p = sub.add_parser(name, help=helptext)
        if name == "trace":
            p.add_argument("src", help="source device (with DST), "
                                       "or a scenario name")
            p.add_argument("dst", nargs="?")
        else:
            p.add_argument("src")
            p.add_argument("dst")
        p.add_argument("--load", action="store_true",
                       help="add background KV load first")
        if name == "ping":
            p.add_argument("--count", type=int, default=8)
        if name == "perf":
            p.add_argument("--duration", type=float, default=0.05)
        if name == "trace":
            p.add_argument("--out", default=None,
                           help="profiling-trace output path "
                                "(default trace-<scenario>.json)")
            p.add_argument("--sim-seconds", type=float, default=0.15,
                           help="simulated seconds to run the scenario")

    drill = sub.add_parser("drill", help="failure-injection drill")
    drill.add_argument("--failure", default="switch",
                       choices=["switch", "link-degrade", "link-down"])

    chaos = sub.add_parser("chaos", help="chaos campaign harness")
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_run = chaos_sub.add_parser(
        "run", help="run one seeded fault campaign with invariant checks"
    )
    chaos_run.add_argument("--seed", type=int, default=0,
                           help="campaign seed (fully deterministic)")
    chaos_run.add_argument("--faults", type=int, default=20,
                           help="number of failures to inject")
    chaos_run.add_argument("--intents", type=int, default=6,
                           help="base workload size")
    chaos_run.add_argument("--events", action="store_true",
                           help="print the full inject/repair timeline")

    from .fleet import FLEET_CLOCKS, PLACEMENT_POLICIES

    fleet = sub.add_parser("fleet", help="multi-host cluster layer")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_sub.add_parser(
        "run", help="seeded churn workload under the cluster scheduler"
    )
    fleet_replay = fleet_sub.add_parser(
        "replay", help="replay a datacenter trace (or a synthesized "
                       "one) with an SLO/JCT report"
    )
    fleet_slo = fleet_sub.add_parser(
        "slo", help="seeded latency-regression scenario: burn-rate "
                    "alert names the silently degraded host, the fleet "
                    "migrates its sessions away, attainment recovers"
    )
    fleet_chaos = fleet_sub.add_parser(
        "chaos", help="seeded fleet fault campaign (crashes/degrades/"
                      "partitions) under churn, audited by the fleet "
                      "invariant oracle"
    )
    fleet_describe = fleet_sub.add_parser(
        "describe", help="print a fresh fleet's layout"
    )
    for p in (fleet_run, fleet_replay, fleet_chaos, fleet_describe):
        p.add_argument("--hosts", type=int,
                       default=8 if p is fleet_chaos else 4,
                       help="number of hosts in the fleet")
        p.add_argument("--policy", default="best-fit",
                       type=lambda s: s.replace("_", "-"),
                       choices=sorted(PLACEMENT_POLICIES),
                       help="placement policy (underscore spellings "
                            "accepted)")
        p.add_argument("--clock", default="event",
                       choices=sorted(FLEET_CLOCKS),
                       help="fleet clock discipline: 'event' wakes only "
                            "hosts with pending work (fast, default); "
                            "'lockstep' advances every host each quantum "
                            "(reference)")
        if p is not fleet_describe:
            p.add_argument("--parallel", type=int, default=None,
                           metavar="N",
                           help="shard host simulations across N worker "
                                "processes (deterministic: same outcome "
                                "as serial; clamped to the core count)")
    for p in (fleet_run, fleet_replay, fleet_describe):
        p.add_argument("--rebalance-threshold", type=float, default=None,
                       help="peak-reserved skew that triggers a rebalance "
                            "move (default: disabled)")
    for p in (fleet_run, fleet_describe):
        p.add_argument("--max-attempts", type=int, default=None,
                       help="per-intent host-probe bound (default: all)")
    fleet_run.add_argument("--seed", type=int, default=0,
                           help="workload seed (fully deterministic)")
    fleet_run.add_argument("--horizon", type=float, default=0.25,
                           help="simulated seconds of churn")
    fleet_run.add_argument("--arrival-rate", type=float, default=2000.0,
                           help="intent arrivals per simulated second")
    fleet_run.add_argument("--drain", action="store_true",
                           help="release every live session at horizon "
                                "end (un-truncated utilization stats)")
    # Replay bounds probing by default: at fleet scale the *ranking*
    # should decide placement, not an O(hosts) probe sweep per reject.
    fleet_replay.add_argument("--max-attempts", type=int, default=8,
                              help="per-intent host-probe bound "
                                   "(default: 8)")
    fleet_replay.add_argument("--trace", default=None,
                              help="trace file (Alibaba-style CSV, raw "
                                   "JSON rows, or a serialized "
                                   "ClusterTrace); omit to synthesize")
    fleet_replay.add_argument("--format", default="auto",
                              choices=["auto", "csv", "json"],
                              help="trace file format (default: by "
                                   "extension)")
    fleet_replay.add_argument("--time-scale", type=float, default=1.0,
                              help="compress ingested timestamps by this "
                                   "factor (real traces span hours)")
    fleet_replay.add_argument("--seed", type=int, default=0,
                              help="synthesizer seed (fully "
                                   "deterministic)")
    fleet_replay.add_argument("--tasks", type=int, default=10_000,
                              help="synthesized task count")
    fleet_replay.add_argument("--tenants", type=int, default=128,
                              help="synthesized tenant pool size")
    fleet_replay.add_argument("--horizon", type=float, default=20.0,
                              help="synthesized arrival horizon "
                                   "(simulated seconds)")
    fleet_replay.add_argument("--slo-stretch", type=float, default=1.5,
                              help="SLO bound as a multiple of task "
                                   "duration (default: 1.5)")
    fleet_replay.add_argument("--no-retry", action="store_true",
                              help="make every first rejection final")
    fleet_replay.add_argument("--samples", type=int, default=32,
                              help="host-utilization sampling points")
    fleet_replay.add_argument("--compare", action="store_true",
                              help="replay once per policy on "
                                   "byte-identical load and print the "
                                   "comparison table")
    fleet_replay.add_argument("--faults", type=int, default=0,
                              help="inject this many seeded host faults "
                                   "over the trace horizon (0 = none); "
                                   "with --compare every policy endures "
                                   "the identical storm")
    fleet_replay.add_argument("--domains", type=int, default=1,
                              help="failure domains to spread hosts over")
    fleet_replay.add_argument("--slo", action="store_true",
                              help="arm continuous latency probes and "
                                   "append the burn-rate monitor's "
                                   "report")
    fleet_replay.add_argument("--slo-bound", type=float, default=200.0,
                              metavar="US",
                              help="probe latency bound in microseconds "
                                   "(with --slo; default: 200)")
    fleet_replay.add_argument("--report", default=None,
                              help="write the machine-readable JSON "
                                   "report here")

    fleet_slo.add_argument("--hosts", type=int, default=4,
                           help="number of hosts in the fleet")
    fleet_slo.add_argument("--clock", default="event",
                           choices=sorted(FLEET_CLOCKS),
                           help="fleet clock discipline (bit-identical "
                                "outcome either way)")
    fleet_slo.add_argument("--parallel", type=int, default=None,
                           metavar="N",
                           help="shard host simulations across N worker "
                                "processes (deterministic: same outcome "
                                "as serial)")
    fleet_slo.add_argument("--seed", type=int, default=0,
                           help="churn seed (fully deterministic)")
    fleet_slo.add_argument("--horizon", type=float, default=0.12,
                           help="simulated seconds")
    fleet_slo.add_argument("--arrival-rate", type=float, default=2000.0,
                           help="intent arrivals per simulated second")
    fleet_slo.add_argument("--bound", type=float, default=200.0,
                           metavar="US",
                           help="objective latency bound in microseconds")
    fleet_slo.add_argument("--probe-period", type=float, default=0.002,
                           help="seconds between probe sweeps")
    fleet_slo.add_argument("--sample-stride", type=int, default=1,
                           help="sample every k-th placement per sweep")
    fleet_slo.add_argument("--degrade-at", type=float, default=0.04,
                           help="when the target host's links silently "
                                "degrade")
    fleet_slo.add_argument("--degrade-factor", type=float, default=0.05,
                           help="remaining capacity fraction (1.0 "
                                "injects no regression)")
    fleet_slo.add_argument("--restore-at", type=float, default=None,
                           help="optional repair instant")
    fleet_slo.add_argument("--max-moves", type=int, default=4,
                           help="migration budget per alert")

    fleet_chaos.add_argument("--seed", type=int, default=0,
                             help="campaign seed (fully deterministic)")
    fleet_chaos.add_argument("--fault-rate", type=float, default=40.0,
                             help="fault injections per simulated second "
                                  "(schedule length = rate * horizon)")
    fleet_chaos.add_argument("--horizon", type=float, default=0.3,
                             help="simulated seconds of churn")
    fleet_chaos.add_argument("--domains", type=int, default=4,
                             help="failure domains to spread hosts over")
    fleet_chaos.add_argument("--report", default=None,
                             help="write the machine-readable JSON "
                                  "outcome here")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "presets": cmd_presets,
        "describe": cmd_describe,
        "ping": cmd_ping,
        "trace": cmd_trace,
        "perf": cmd_perf,
        "drill": cmd_drill,
        "chaos": cmd_chaos,
        "fleet": cmd_fleet,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
