"""Performance targets: the application intent the manager interprets.

§3.2: "The manageable intra-host network needs to 'interpret' the
application intent (i.e., performance targets) into a set of low-level
requirements based on a resource model."  An intent names *what the tenant
wants* (bandwidth between endpoints, or aggregate bandwidth at an endpoint,
optionally with a latency SLO) without saying anything about paths or
links — those are the interpreter's and scheduler's business.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class IntentKind(enum.Enum):
    """The resource-model flavour of an intent (§3.2 Q1, [16]).

    PIPE — a guarantee between a specific source/destination pair
    (conservative: reserves along one concrete path).
    HOSE — an aggregate ingress+egress guarantee at one endpoint,
    regardless of peers (more flexible, admits denser packing).
    """

    PIPE = "pipe"
    HOSE = "hose"


@dataclass(frozen=True)
class PerformanceTarget:
    """One tenant's declared performance intent.

    Attributes:
        intent_id: Unique id.
        tenant_id: The requesting tenant.
        kind: :class:`IntentKind`.
        bandwidth: Guaranteed floor in bytes/s.
        src: Source device (PIPE) or the endpoint (HOSE).
        dst: Destination device (PIPE only; must be ``None`` for HOSE).
        latency_slo: Optional round-trip latency bound in seconds; candidate
            paths whose zero-load RTT exceeds it are rejected at
            interpretation time.
        work_conserving: Whether the tenant may use spare bandwidth beyond
            its floor when available.
        bidirectional: PIPE only — guarantee the floor in *both* directions
            of the path (request/response services need the return
            direction protected too).  HOSE intents are always
            bidirectional by definition.
    """

    intent_id: str
    tenant_id: str
    kind: IntentKind
    bandwidth: float
    src: str
    dst: Optional[str] = None
    latency_slo: Optional[float] = None
    work_conserving: bool = True
    bidirectional: bool = False

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(
                f"intent {self.intent_id!r}: bandwidth must be > 0"
            )
        if self.kind is IntentKind.PIPE and self.dst is None:
            raise ValueError(
                f"intent {self.intent_id!r}: PIPE intents need a dst"
            )
        if self.kind is IntentKind.HOSE and self.dst is not None:
            raise ValueError(
                f"intent {self.intent_id!r}: HOSE intents must not set dst"
            )
        if self.latency_slo is not None and self.latency_slo <= 0:
            raise ValueError(
                f"intent {self.intent_id!r}: latency_slo must be > 0"
            )


def pipe(intent_id: str, tenant_id: str, src: str, dst: str,
         bandwidth: float, latency_slo: Optional[float] = None,
         work_conserving: bool = True,
         bidirectional: bool = False) -> PerformanceTarget:
    """Convenience constructor for a PIPE intent."""
    return PerformanceTarget(
        intent_id=intent_id, tenant_id=tenant_id, kind=IntentKind.PIPE,
        bandwidth=bandwidth, src=src, dst=dst, latency_slo=latency_slo,
        work_conserving=work_conserving, bidirectional=bidirectional,
    )


def hose(intent_id: str, tenant_id: str, endpoint: str, bandwidth: float,
         latency_slo: Optional[float] = None,
         work_conserving: bool = True) -> PerformanceTarget:
    """Convenience constructor for a HOSE intent."""
    return PerformanceTarget(
        intent_id=intent_id, tenant_id=tenant_id, kind=IntentKind.HOSE,
        bandwidth=bandwidth, src=endpoint, dst=None, latency_slo=latency_slo,
        work_conserving=work_conserving,
    )
