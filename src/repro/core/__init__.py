"""Holistic resource management: intents -> interpret -> schedule -> arbitrate."""

from .admission import (
    AdmissionController,
    AdmissionDecision,
    ReservationLedger,
)
from .arbiter import DynamicArbiter, LinkAllocation, compute_caps
from .intents import IntentKind, PerformanceTarget, hose, pipe
from .interpreter import (
    CandidateRequirement,
    CompiledIntent,
    LinkDemand,
    interpret,
)
from .manager import HostNetworkManager, Placement
from .scheduler import (
    FirstFitScheduler,
    RandomScheduler,
    Scheduler,
    TopologyAwareScheduler,
    make_scheduler,
)
from .virtual import (
    MigrationResult,
    VirtualHostView,
    build_view,
    migrate_tenant,
)

__all__ = [
    "IntentKind",
    "PerformanceTarget",
    "pipe",
    "hose",
    "LinkDemand",
    "CandidateRequirement",
    "CompiledIntent",
    "interpret",
    "ReservationLedger",
    "AdmissionController",
    "AdmissionDecision",
    "Scheduler",
    "TopologyAwareScheduler",
    "FirstFitScheduler",
    "RandomScheduler",
    "make_scheduler",
    "compute_caps",
    "LinkAllocation",
    "DynamicArbiter",
    "VirtualHostView",
    "build_view",
    "MigrationResult",
    "migrate_tenant",
    "HostNetworkManager",
    "Placement",
]
