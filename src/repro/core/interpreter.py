"""The performance-targets interpreter (§3.2).

Compiles a :class:`~repro.core.intents.PerformanceTarget` into concrete
*candidate requirements*: for each viable fabric path, the set of per-link
bandwidth demands that would satisfy the intent along that path.  The
interpreter is "general and flexible because the intra-host network
topology and capacities may vary on different hosts" — it works from the
topology alone, with no preset-specific logic.

* PIPE intents compile to k candidate paths src->dst; each candidate
  demands the full floor on every link it crosses.
* HOSE intents compile to a single candidate: the union of links on the
  shortest paths from the endpoint to each of its *anchor* sinks (the
  local memory system and the external network — the two places intra-host
  traffic terminates), demanding the floor once per link.  This is the
  hose model's aggregate semantics: one reservation covers any peer mix.

Latency SLOs are enforced structurally: candidates whose zero-load RTT
already exceeds the SLO are discarded here, before scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import InterpretationError, NoPathError
from ..topology.elements import DeviceType
from ..topology.graph import HostTopology
from ..topology.routing import Path, k_shortest_paths, shortest_path
from .intents import IntentKind, PerformanceTarget


@dataclass(frozen=True)
class LinkDemand:
    """A directed per-link bandwidth requirement.

    Attributes:
        link_id: The physical link.
        direction: ``"fwd"``/``"rev"`` relative to the link's (src, dst).
        bandwidth: Required bytes/s on that direction.
    """

    link_id: str
    direction: str
    bandwidth: float


@dataclass(frozen=True)
class CandidateRequirement:
    """One way to satisfy an intent: a path (or link union) plus demands."""

    paths: Tuple[Path, ...]
    demands: Tuple[LinkDemand, ...]

    def links(self) -> List[str]:
        """Distinct physical links this candidate touches."""
        seen = []
        for demand in self.demands:
            if demand.link_id not in seen:
                seen.append(demand.link_id)
        return seen


@dataclass(frozen=True)
class CompiledIntent:
    """Interpreter output: the intent plus its viable candidates."""

    intent: PerformanceTarget
    candidates: Tuple[CandidateRequirement, ...]


def _directed_demands(topology: HostTopology, path: Path,
                      bandwidth: float,
                      bidirectional: bool) -> List[LinkDemand]:
    """Per-link demands for *bandwidth* along *path* (optionally both ways)."""
    demands: List[LinkDemand] = []
    for i, link_id in enumerate(path.links):
        link = topology.link(link_id)
        forward = "fwd" if path.devices[i] == link.src else "rev"
        demands.append(LinkDemand(link_id, forward, bandwidth))
        if bidirectional:
            backward = "rev" if forward == "fwd" else "fwd"
            demands.append(LinkDemand(link_id, backward, bandwidth))
    return demands


def _merge_demands(demands: List[LinkDemand]) -> List[LinkDemand]:
    """Union demands per (link, direction), keeping the maximum.

    The hose semantics: the same reservation covers any peer, so shared
    links are reserved once, not once per destination.
    """
    best: Dict[Tuple[str, str], float] = {}
    order: List[Tuple[str, str]] = []
    for demand in demands:
        key = (demand.link_id, demand.direction)
        if key not in best:
            order.append(key)
        best[key] = max(best.get(key, 0.0), demand.bandwidth)
    return [LinkDemand(link, direction, best[(link, direction)])
            for link, direction in order]


def _hose_anchors(topology: HostTopology, endpoint: str) -> List[str]:
    """Sinks a hose endpoint's traffic terminates at.

    Intra-host traffic ultimately hits host memory (the endpoint-local DIMM
    group when one exists, else any DIMM) and — for externally reachable
    hosts — the inter-host port.  These anchor the hose's reserved tree.
    """
    anchors: List[str] = []
    socket = topology.socket_of(endpoint)
    dimms = topology.devices(DeviceType.DIMM)
    local = [d for d in dimms if d.socket == socket]
    pool = local or dimms
    if pool:
        anchors.append(pool[0].device_id)
    for ext in topology.devices(DeviceType.EXTERNAL):
        if ext.device_id != endpoint:
            anchors.append(ext.device_id)
            break
    anchors = [a for a in anchors if a != endpoint]
    if not anchors:
        raise InterpretationError(
            f"no hose anchors reachable from {endpoint!r} "
            f"(topology has no DIMM or external sink)"
        )
    return anchors


def interpret(topology: HostTopology, intent: PerformanceTarget,
              k: int = 4) -> CompiledIntent:
    """Compile *intent* into candidate per-link requirements.

    Raises :class:`InterpretationError` when no candidate can possibly
    satisfy the intent (no path, every path SLO-infeasible, or the floor
    exceeds every path's bottleneck capacity).
    """
    if intent.kind is IntentKind.PIPE:
        candidates = _interpret_pipe(topology, intent, k)
    else:
        candidates = _interpret_hose(topology, intent, k)
    if not candidates:
        raise InterpretationError(
            f"intent {intent.intent_id!r}: no feasible candidate "
            f"(bandwidth={intent.bandwidth:.3g}B/s, "
            f"latency_slo={intent.latency_slo})"
        )
    return CompiledIntent(intent=intent, candidates=tuple(candidates))


def _interpret_pipe(topology: HostTopology, intent: PerformanceTarget,
                    k: int) -> List[CandidateRequirement]:
    try:
        paths = k_shortest_paths(topology, intent.src, intent.dst, k=k)
    except NoPathError as exc:
        raise InterpretationError(
            f"intent {intent.intent_id!r}: {exc}"
        ) from exc
    candidates = []
    for path in paths:
        if intent.latency_slo is not None \
                and 2.0 * path.base_latency > intent.latency_slo:
            continue
        if path.bottleneck_capacity < intent.bandwidth:
            continue
        demands = _directed_demands(topology, path, intent.bandwidth,
                                    bidirectional=intent.bidirectional)
        candidates.append(
            CandidateRequirement(paths=(path,), demands=tuple(demands))
        )
    return candidates


def _interpret_hose(topology: HostTopology, intent: PerformanceTarget,
                    k: int) -> List[CandidateRequirement]:
    """Hose candidates: one per combination of per-anchor path choices.

    The hose's reserved tree is not unique — each anchor may be reachable
    over several fabric paths (parallel UPI links, either NIC's inter-host
    port).  Emitting the (bounded) cross-product as distinct candidates
    lets the topology-aware scheduler place hoses as cleverly as pipes.
    """
    import itertools

    anchors = _hose_anchors(topology, intent.src)
    per_anchor: List[List[Path]] = []
    for anchor in anchors:
        try:
            choices = k_shortest_paths(topology, intent.src, anchor,
                                       k=min(k, 3))
        except NoPathError:
            continue
        viable = [
            p for p in choices
            if (intent.latency_slo is None
                or 2.0 * p.base_latency <= intent.latency_slo)
            and p.bottleneck_capacity >= intent.bandwidth
        ]
        if viable:
            per_anchor.append(viable)
    if not per_anchor:
        return []
    candidates: List[CandidateRequirement] = []
    for combo in itertools.islice(itertools.product(*per_anchor), 8):
        demands: List[LinkDemand] = []
        for path in combo:
            # Hose guarantees are ingress+egress: demand both directions.
            demands.extend(
                _directed_demands(topology, path, intent.bandwidth,
                                  bidirectional=True)
            )
        candidates.append(
            CandidateRequirement(
                paths=tuple(combo), demands=tuple(_merge_demands(demands))
            )
        )
    return candidates
