"""Virtualized intra-host network abstraction (§3.2).

"Each tenant should see a dedicated isolated virtual intra-host network ...
if a tenant is only allocated half of the PCIe bandwidth to an I/O device,
from the tenant's perspective, it should see an illusion that the allocated
bandwidth is the corresponding PCIe capacity."

:class:`VirtualHostView` is that illusion: a topology whose link capacities
equal the tenant's committed floors, with unreserved links pruned.  Because
the view is expressed in intents (not host-specific link ids), a tenant can
be migrated to a differently-shaped host by re-submitting the same intents
there — :func:`migrate_tenant` — with no tenant-side reconfiguration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from ..errors import UnknownTenantError
from ..topology.elements import Link
from ..topology.graph import HostTopology
from .intents import PerformanceTarget

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .manager import HostNetworkManager


@dataclass(frozen=True)
class VirtualHostView:
    """A tenant's private view of the intra-host network.

    Attributes:
        tenant_id: The viewing tenant.
        topology: A :class:`HostTopology` whose link capacities are the
            tenant's allocations (its "full capacity" illusion).
        intents: The intents backing the view.
    """

    tenant_id: str
    topology: HostTopology
    intents: tuple

    def allocated_capacity(self, link_id: str) -> float:
        """The tenant-visible capacity of *link_id* (0 if unreserved)."""
        if not self.topology.has_link(link_id):
            return 0.0
        return self.topology.link(link_id).capacity

    def total_allocated(self) -> float:
        """Sum of tenant-visible link capacities (a size-of-slice scalar)."""
        return sum(l.capacity for l in self.topology.links())

    def guaranteed_bandwidth(self) -> Dict[str, float]:
        """Floor per intent id (what the tenant was promised)."""
        return {i.intent_id: i.bandwidth for i in self.intents}


def build_view(manager: "HostNetworkManager",
               tenant_id: str) -> VirtualHostView:
    """Construct the tenant's current :class:`VirtualHostView`.

    The view's topology contains every device, but only links on which the
    tenant holds reservations — with capacity equal to the reservation
    (max of the two directions, matching the full-duplex illusion).
    """
    intents = manager.intents_of(tenant_id)
    if tenant_id not in manager.tenants:
        raise UnknownTenantError(tenant_id)
    host = manager.network.topology
    view = HostTopology(name=f"virtual-{tenant_id}@{host.name}")
    for device in host.devices():
        view.add_device(device)

    # Sum same-direction demands across intents, then take the busier
    # direction as the visible capacity.
    directed: Dict[tuple, float] = {}
    for intent in intents:
        for demand in manager.ledger.demands_of(intent.intent_id):
            key = (demand.link_id, demand.direction)
            directed[key] = directed.get(key, 0.0) + demand.bandwidth
    visible: Dict[str, float] = {}
    for (link_id, _direction), bandwidth in directed.items():
        visible[link_id] = max(visible.get(link_id, 0.0), bandwidth)

    for link_id, capacity in visible.items():
        real = host.link(link_id)
        view.add_link(
            Link(
                link_id=real.link_id,
                src=real.src,
                dst=real.dst,
                link_class=real.link_class,
                capacity=capacity,
                base_latency=real.base_latency,
            )
        )
    return VirtualHostView(
        tenant_id=tenant_id, topology=view, intents=tuple(intents),
    )


@dataclass
class MigrationResult:
    """Outcome of :func:`migrate_tenant`.

    Attributes:
        tenant_id: Who moved.
        moved: Intents re-admitted on the destination.
        failed: Intents the destination rejected (with reasons).
        source_view / destination_view: Before/after tenant views.
    """

    tenant_id: str
    moved: List[PerformanceTarget]
    failed: List[tuple]
    source_view: VirtualHostView
    destination_view: Optional[VirtualHostView]

    @property
    def complete(self) -> bool:
        """Whether every intent survived the migration."""
        return not self.failed and bool(self.moved)


def migrate_tenant(source: "HostNetworkManager",
                   destination: "HostNetworkManager",
                   tenant_id: str) -> MigrationResult:
    """Move a tenant between hosts by re-submitting its intents.

    The tenant's intents are host-agnostic *except* for device ids; device
    ids are remapped by device type and per-type index (the n-th NIC on the
    source maps to the n-th NIC on the destination), which is exactly what
    a placement system does when it assigns virtual devices on the new
    host.  Intents the destination cannot admit are reported, and in that
    case already-moved intents are rolled back (all-or-nothing).
    """
    from ..errors import HostNetError

    source_view = build_view(source, tenant_id)
    intents = source.intents_of(tenant_id)
    mapping = _device_mapping(source.network.topology,
                              destination.network.topology)

    if tenant_id not in destination.tenants:
        destination.register_tenant(tenant_id)

    moved: List[PerformanceTarget] = []
    failed: List[tuple] = []
    for intent in intents:
        try:
            remapped = PerformanceTarget(
                intent_id=intent.intent_id,
                tenant_id=intent.tenant_id,
                kind=intent.kind,
                bandwidth=intent.bandwidth,
                src=mapping.get(intent.src, intent.src),
                dst=(mapping.get(intent.dst, intent.dst)
                     if intent.dst is not None else None),
                latency_slo=intent.latency_slo,
                work_conserving=intent.work_conserving,
                bidirectional=intent.bidirectional,
            )
            destination.submit(remapped)
            moved.append(remapped)
        except HostNetError as exc:
            failed.append((intent, str(exc)))

    if failed:
        for intent in moved:
            destination.release(intent.intent_id)
        return MigrationResult(
            tenant_id=tenant_id, moved=[], failed=failed,
            source_view=source_view, destination_view=None,
        )

    for intent in intents:
        source.release(intent.intent_id)
    destination_view = build_view(destination, tenant_id)
    return MigrationResult(
        tenant_id=tenant_id, moved=moved, failed=[],
        source_view=source_view, destination_view=destination_view,
    )


def _device_mapping(src_topo: HostTopology,
                    dst_topo: HostTopology) -> Dict[str, str]:
    """Map source device ids to destination ids by (type, index)."""
    mapping: Dict[str, str] = {}
    from ..topology.elements import DeviceType

    for dtype in DeviceType:
        src_devices = sorted(
            (d.device_id for d in src_topo.devices(dtype))
        )
        dst_devices = sorted(
            (d.device_id for d in dst_topo.devices(dtype))
        )
        for i, device_id in enumerate(src_devices):
            if i < len(dst_devices):
                mapping[device_id] = dst_devices[i]
    return mapping
