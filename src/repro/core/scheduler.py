"""Topology-aware resource scheduling (§3.2).

"There can be several GPU-SSD pathways within an intra-host network that
can support the same amount of bandwidth.  The scheduler needs to carefully
choose one of the pathways based on topology and usage information to
maximize overall resource efficiency."

Three strategies, so the benefit of topology awareness is measurable (E8):

* :class:`TopologyAwareScheduler` — picks the feasible candidate whose
  commitment minimizes the fabric's maximum reserved utilization (balanced
  packing), tie-broken by latency;
* :class:`FirstFitScheduler` — first feasible candidate in interpreter
  order (lowest latency first);
* :class:`RandomScheduler` — uniform choice among feasible candidates.
"""

from __future__ import annotations

import random
from typing import List

from ..errors import ScheduleError
from .admission import AdmissionController
from .interpreter import CandidateRequirement, CompiledIntent


class Scheduler:
    """Strategy interface: choose one feasible candidate (or raise)."""

    name = "base"

    def choose(self, compiled: CompiledIntent,
               admission: AdmissionController) -> CandidateRequirement:
        """Pick a candidate that currently fits; raise :class:`ScheduleError`
        when none does."""
        feasible = admission.feasible(compiled)
        if not feasible:
            raise ScheduleError(
                f"intent {compiled.intent.intent_id!r}: no candidate fits "
                f"(headroom {admission.headroom})"
            )
        return self._select(feasible, admission)

    def _select(self, feasible: List[CandidateRequirement],
                admission: AdmissionController) -> CandidateRequirement:
        raise NotImplementedError


class TopologyAwareScheduler(Scheduler):
    """Minimize post-placement max reserved utilization (balanced packing)."""

    name = "topology_aware"

    def _select(self, feasible: List[CandidateRequirement],
                admission: AdmissionController) -> CandidateRequirement:
        def objective(candidate: CandidateRequirement) -> tuple:
            post = admission.ledger.post_utilization(candidate)
            latency = min(p.base_latency for p in candidate.paths)
            return (post, latency)

        return min(feasible, key=objective)


class FirstFitScheduler(Scheduler):
    """Take the first feasible candidate (interpreter order = lowest latency)."""

    name = "first_fit"

    def _select(self, feasible: List[CandidateRequirement],
                admission: AdmissionController) -> CandidateRequirement:
        return feasible[0]


class RandomScheduler(Scheduler):
    """Uniform random choice among feasible candidates (the null strategy)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def _select(self, feasible: List[CandidateRequirement],
                admission: AdmissionController) -> CandidateRequirement:
        return self._rng.choice(feasible)


def make_scheduler(name: str, seed: int = 0) -> Scheduler:
    """Scheduler factory by strategy name."""
    if name == "topology_aware":
        return TopologyAwareScheduler()
    if name == "first_fit":
        return FirstFitScheduler()
    if name == "random":
        return RandomScheduler(seed=seed)
    raise ScheduleError(f"unknown scheduler strategy {name!r}")
