"""The :class:`HostNetworkManager`: the paper's compile-schedule-arbitrate
pipeline in one facade (§3.2).

Submitting a :class:`~repro.core.intents.PerformanceTarget` runs:

1. **interpret** — compile the intent into candidate per-link requirements
   under its resource model (pipe/hose);
2. **schedule** — pick a candidate topology-aware (or via a baseline
   strategy);
3. **admit** — capacity-check and commit the reservation;
4. **arbitrate** — install the floors in the dynamic arbiter, which
   enforces them on the live fabric from then on.

The manager also maintains each tenant's virtualized view and the tenant
registry; it is the single object examples and benchmarks interact with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set

from ..errors import AdmissionError, ScheduleError, UnknownTenantError
from ..sim.network import FabricNetwork
from ..trace.recorder import TRACER
from ..units import us
from .admission import AdmissionController, ReservationLedger
from .arbiter import DynamicArbiter
from .intents import PerformanceTarget
from .interpreter import CandidateRequirement, CompiledIntent, interpret
from .scheduler import Scheduler, TopologyAwareScheduler
from .virtual import VirtualHostView, build_view


@dataclass
class Placement:
    """A successfully admitted intent and where it landed.

    Attributes:
        intent: The admitted intent.
        candidate: The committed candidate (paths + per-link demands).
    """

    intent: PerformanceTarget
    candidate: CandidateRequirement

    def links(self) -> List[str]:
        """Physical links the placement reserved on."""
        return self.candidate.links()


class HostNetworkManager:
    """Holistic resource manager over one host's fabric.

    Args:
        network: The live fabric to manage.
        scheduler: Path-selection strategy (default topology-aware).
        headroom: Admission budget fraction (see
            :class:`~repro.core.admission.AdmissionController`).
        work_conserving: Arbiter allocation mode.
        arbiter_period: Arbiter adjustment period (seconds).
        decision_latency: Arbiter sense-to-enforce delay (seconds, §3.2 Q3).
        candidate_paths: k for the interpreter's path enumeration.
        auto_start_arbiter: Start the arbiter loop on construction.
    """

    def __init__(
        self,
        network: FabricNetwork,
        scheduler: Optional[Scheduler] = None,
        headroom: float = 0.9,
        work_conserving: bool = True,
        arbiter_period: float = 0.001,
        decision_latency: float = us(10),
        candidate_paths: int = 4,
        auto_start_arbiter: bool = True,
    ) -> None:
        self.network = network
        self.scheduler = scheduler or TopologyAwareScheduler()
        self.ledger = ReservationLedger(network.topology)
        self.admission = AdmissionController(self.ledger, headroom=headroom)
        self.arbiter = DynamicArbiter(
            network, period=arbiter_period,
            decision_latency=decision_latency,
            work_conserving=work_conserving,
        )
        self.candidate_paths = candidate_paths
        self.tenants: Set[str] = set()
        self._placements: Dict[str, Placement] = {}
        self._intents_by_tenant: Dict[str, List[str]] = {}
        self._release_listeners: List[Callable[[str], None]] = []
        self._change_listeners: List[Callable[[], None]] = []
        #: Bumped on every reservation-changing operation (submit,
        #: release, replace, reinstate) — the cheap "did anything about
        #: this host's placements move" version the fleet telemetry
        #: subscribes to.
        self.change_count = 0
        if auto_start_arbiter:
            self.arbiter.start()

    # -- tenants -----------------------------------------------------------------

    def register_tenant(self, tenant_id: str) -> None:
        """Add a tenant; until it holds intents it is best-effort."""
        if tenant_id in self.tenants:
            return
        self.tenants.add(tenant_id)
        self._intents_by_tenant.setdefault(tenant_id, [])
        self.arbiter.register_best_effort(tenant_id)

    def unregister_tenant(self, tenant_id: str) -> None:
        """Remove a tenant: release its intents and lift its caps."""
        if tenant_id not in self.tenants:
            raise UnknownTenantError(tenant_id)
        for intent_id in list(self._intents_by_tenant.get(tenant_id, [])):
            self.release(intent_id)
        self.arbiter.unregister_best_effort(tenant_id)
        self.tenants.discard(tenant_id)
        self._intents_by_tenant.pop(tenant_id, None)

    # -- the pipeline ---------------------------------------------------------------

    def submit(self, intent: PerformanceTarget) -> Placement:
        """Interpret, schedule, admit, and start enforcing *intent*.

        Raises :class:`~repro.errors.InterpretationError`,
        :class:`~repro.errors.ScheduleError`, or
        :class:`~repro.errors.AdmissionError` at the stage that failed.
        """
        if not TRACER.enabled:
            return self._submit_untracked(intent)
        with TRACER.span("manager", "admit", {
            "tenant": intent.tenant_id,
            "intent": intent.intent_id,
        }):
            try:
                placement = self._submit_untracked(intent)
            except Exception as exc:
                TRACER.annotate(outcome=type(exc).__name__)
                raise
            TRACER.annotate(outcome="admitted",
                            links=len(placement.links()))
            return placement

    def _submit_untracked(self, intent: PerformanceTarget) -> Placement:
        if intent.tenant_id not in self.tenants:
            self.register_tenant(intent.tenant_id)
        if intent.intent_id in self._placements:
            raise AdmissionError(intent.intent_id, "already placed")

        compiled = interpret(self.network.topology, intent,
                             k=self.candidate_paths)
        candidate = self.scheduler.choose(compiled, self.admission)
        decision = self.admission.admit(compiled, candidate)
        if not decision.admitted:
            raise AdmissionError(intent.intent_id, decision.reason)

        self._install_enforcement(intent, candidate)
        placement = Placement(intent=intent, candidate=candidate)
        self._placements[intent.intent_id] = placement
        self._intents_by_tenant.setdefault(intent.tenant_id, []).append(
            intent.intent_id
        )
        # Enforce the new allocation immediately rather than waiting for
        # the next periodic tick ("adjust the allocation promptly when
        # applications come and go").
        self.arbiter.adjust_once()
        self._mark_changed()
        return placement

    def _install_enforcement(self, intent: PerformanceTarget,
                             candidate: CandidateRequirement) -> None:
        """Install floors and SLO ceilings for an admitted candidate.

        All-or-nothing: a failure mid-install (a misbehaving arbiter,
        a candidate referencing a removed link) rolls back every floor
        and ceiling already placed *and* the ledger commit, so a failed
        submit leaves the fabric exactly as it found it.
        """
        installed: List = []
        try:
            for demand in candidate.demands:
                self.arbiter.add_floor(intent.tenant_id, demand.link_id,
                                       demand.bandwidth,
                                       direction=demand.direction)
                installed.append(demand)
            if intent.latency_slo is not None:
                self._install_slo_ceilings(intent, candidate)
        except Exception:
            for demand in installed:
                self.arbiter.remove_floor(intent.tenant_id, demand.link_id,
                                          demand.bandwidth,
                                          direction=demand.direction)
            for link_id in candidate.links():
                self.arbiter.clear_utilization_ceiling(intent.intent_id,
                                                       link_id)
            self.ledger.release(intent.intent_id)
            self.admission.admitted_count -= 1
            self.admission.rejected_count += 1
            raise

    def replace(self, intent_id: str,
                avoid_links: Iterable[str] = ()) -> Placement:
        """Re-place an admitted intent onto an alternate candidate.

        The failure-recovery path: releases the current placement,
        re-interprets the intent against the *current* topology (healthy
        routing excludes down links), and admits a candidate that touches
        none of *avoid_links* (dead or quarantined links).  If no such
        candidate exists or admission fails, the original placement is
        reinstated exactly — floors, ceilings, and ledger — and the error
        re-raised, so a failed re-placement never strands the intent.
        """
        if not TRACER.enabled:
            return self._replace_untracked(intent_id, avoid_links)
        with TRACER.span("manager", "replace", {"intent": intent_id}):
            try:
                placement = self._replace_untracked(intent_id, avoid_links)
            except Exception as exc:
                TRACER.annotate(outcome=type(exc).__name__)
                raise
            TRACER.annotate(outcome="replaced",
                            links=len(placement.links()))
            return placement

    def _replace_untracked(self, intent_id: str,
                           avoid_links: Iterable[str]) -> Placement:
        old = self.placement(intent_id)
        intent = old.intent
        avoid = set(avoid_links)
        self._release_untracked(intent_id)
        try:
            compiled = interpret(self.network.topology, intent,
                                 k=self.candidate_paths)
            viable = tuple(
                c for c in compiled.candidates
                if not avoid.intersection(c.links())
            )
            if not viable:
                raise ScheduleError(
                    f"intent {intent_id!r}: every candidate crosses an "
                    f"avoided link"
                )
            compiled = CompiledIntent(intent=intent, candidates=viable)
            candidate = self.scheduler.choose(compiled, self.admission)
            decision = self.admission.admit(compiled, candidate)
            if not decision.admitted:
                raise AdmissionError(intent_id, decision.reason)
            self._install_enforcement(intent, candidate)
        except Exception:
            self.reinstate(old)
            raise
        placement = Placement(intent=intent, candidate=candidate)
        self._placements[intent_id] = placement
        self._intents_by_tenant.setdefault(intent.tenant_id, []).append(
            intent_id
        )
        self.arbiter.adjust_once()
        self._mark_changed()
        return placement

    def reinstate(self, placement: Placement) -> None:
        """Put a just-released placement back, bypassing the capacity check.

        The atomic-rollback primitive shared by failed re-placements and
        failed cross-host migrations: the reservation was admitted before
        and — the engine being single-threaded — nothing else was given its
        budget between the release and this call, so re-committing the same
        candidate cannot oversubscribe.
        """
        intent = placement.intent
        self.ledger.commit(intent.intent_id, placement.candidate)
        self._install_enforcement(intent, placement.candidate)
        self._placements[intent.intent_id] = placement
        self._intents_by_tenant.setdefault(intent.tenant_id, []).append(
            intent.intent_id
        )
        self.arbiter.adjust_once()
        self._mark_changed()

    def _install_slo_ceilings(self, intent: PerformanceTarget,
                              candidate: CandidateRequirement) -> None:
        """Compile a latency SLO into per-link utilization ceilings.

        Queueing inflates a path's one-way latency to roughly
        ``B * (1 + alpha * rho / (1 - rho))`` at uniform utilization
        ``rho`` (B = zero-load latency).  Inverting for the SLO's one-way
        budget gives the admissible rho; a 0.8 safety factor keeps tail
        headroom.  This is the interpreter's "holistic" translation of an
        application intent into low-level requirements (§3.2).
        """
        alpha = self.network.latency_model.alpha
        for path in candidate.paths:
            base = path.base_latency
            if base <= 0:
                continue
            slack = (intent.latency_slo / 2.0 - base) / base
            if slack <= 0:
                rho = 0.2  # SLO is razor-thin; keep the path nearly idle
            else:
                budget = 0.8 * slack
                rho = budget / (alpha + budget)
            rho = min(max(rho, 0.2), 1.0)
            for link_id in path.links:
                self.arbiter.set_utilization_ceiling(
                    intent.intent_id, link_id, rho
                )

    def try_submit(self, intent: PerformanceTarget) -> Optional[Placement]:
        """Like :meth:`submit` but returns ``None`` instead of raising."""
        from ..errors import HostNetError

        try:
            return self.submit(intent)
        except HostNetError:
            return None

    def release(self, intent_id: str) -> None:
        """Withdraw an intent: drop reservations, floors, and stale caps."""
        if not TRACER.enabled:
            return self._release_untracked(intent_id)
        placement = self._placements.get(intent_id)
        tenant = placement.intent.tenant_id if placement else "?"
        with TRACER.span("manager", "release",
                         {"tenant": tenant, "intent": intent_id}):
            self._release_untracked(intent_id)

    def _release_untracked(self, intent_id: str) -> None:
        placement = self._placements.pop(intent_id, None)
        if placement is None:
            raise AdmissionError(intent_id, "not placed")
        tenant_id = placement.intent.tenant_id
        for demand in placement.candidate.demands:
            self.arbiter.remove_floor(tenant_id, demand.link_id,
                                      demand.bandwidth,
                                      direction=demand.direction)
        if placement.intent.latency_slo is not None:
            for link_id in placement.links():
                self.arbiter.clear_utilization_ceiling(intent_id, link_id)
        self.ledger.release(intent_id)
        bucket = self._intents_by_tenant.get(tenant_id, [])
        if intent_id in bucket:
            bucket.remove(intent_id)
        # Lift caps on links the arbiter no longer manages; one batched
        # re-solve covers every lifted cap.
        with self.network.batch():
            for link_id in placement.links():
                if link_id not in self.arbiter.managed_links():
                    self.arbiter.lift_link_caps(link_id)
        self.arbiter.adjust_once()
        self._mark_changed()
        for listener in self._release_listeners:
            listener(intent_id)

    def on_release(self, listener: Callable[[str], None]) -> None:
        """Register a callback fired after every successful release.

        Capacity just came free; the admission retry queue uses this to
        re-try parked intents promptly instead of waiting out its backoff.
        """
        self._release_listeners.append(listener)

    def on_change(self, listener: Callable[[], None]) -> None:
        """Register a callback fired after any reservation change.

        Coarser than :meth:`on_release` (it also fires on submit,
        replace, and reinstate) and carries no payload: it is an
        invalidation signal, not an event stream.  Fleet telemetry uses
        it to mark this host's headroom summary dirty.
        """
        self._change_listeners.append(listener)

    def _mark_changed(self) -> None:
        self.change_count += 1
        for listener in self._change_listeners:
            listener()

    # -- queries ---------------------------------------------------------------------

    def placement(self, intent_id: str) -> Placement:
        """The placement of an admitted intent."""
        try:
            return self._placements[intent_id]
        except KeyError:
            raise AdmissionError(intent_id, "not placed") from None

    def placements(self) -> List[Placement]:
        """All current placements."""
        return list(self._placements.values())

    def intents_of(self, tenant_id: str) -> List[PerformanceTarget]:
        """Admitted intents of one tenant."""
        if tenant_id not in self.tenants:
            raise UnknownTenantError(tenant_id)
        return [
            self._placements[i].intent
            for i in self._intents_by_tenant.get(tenant_id, [])
        ]

    def tenant_view(self, tenant_id: str) -> VirtualHostView:
        """The tenant's virtualized intra-host network view."""
        return build_view(self, tenant_id)

    def shutdown(self) -> None:
        """Stop the arbiter and lift every cap (end of experiment)."""
        self.arbiter.stop(lift_caps=True)

    def describe(self) -> str:
        """Human-readable summary of the manager's state."""
        lines = [
            f"HostNetworkManager on {self.network.topology.name!r}: "
            f"{len(self.tenants)} tenants, {len(self._placements)} intents, "
            f"scheduler={self.scheduler.name}, "
            f"{'work-conserving' if self.arbiter.work_conserving else 'reserved'}"
        ]
        for placement in self._placements.values():
            intent = placement.intent
            lines.append(
                f"  {intent.intent_id}: tenant={intent.tenant_id} "
                f"{intent.kind.value} {intent.bandwidth:.3g}B/s over "
                f"{len(placement.links())} links"
            )
        return "\n".join(lines)
