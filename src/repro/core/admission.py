"""Reservation ledger, admission control, and the retry queue.

The ledger tracks, per directed link, how much bandwidth is promised to
admitted intents.  Admission is a pure capacity check: a candidate fits iff
every one of its directed demands leaves the link within
``capacity * headroom``.  Headroom < 1 keeps slack for system traffic and
model error; headroom > 1 deliberately overcommits (useful with
work-conserving tenants that rarely peak together).

:class:`AdmissionRetryQueue` softens the hard admit/reject edge: intents
that fail under transient congestion or fault pressure are *parked* and
re-tried on a sim-clock-driven exponential backoff (with jitter, so a
burst of rejects doesn't re-arrive as a burst of retries), re-admitted
promptly when capacity frees, and shed with a recorded reason once their
deadline passes or the bounded queue overflows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import AdmissionError, HostNetError
from ..trace.recorder import TRACER
from ..topology.graph import HostTopology
from .intents import PerformanceTarget
from .interpreter import CandidateRequirement, CompiledIntent, LinkDemand


def _key(link_id: str, direction: str) -> Tuple[str, str]:
    return (link_id, direction)


class ReservationLedger:
    """Per-directed-link bandwidth reservations of admitted intents."""

    def __init__(self, topology: HostTopology) -> None:
        self.topology = topology
        self._reserved: Dict[Tuple[str, str], float] = {}
        self._by_intent: Dict[str, List[LinkDemand]] = {}

    def reserved(self, link_id: str, direction: str) -> float:
        """Bytes/s currently reserved on one direction of *link_id*."""
        return self._reserved.get(_key(link_id, direction), 0.0)

    @property
    def reserved_map(self) -> Dict[Tuple[str, str], float]:
        """Live per-``(link_id, direction)`` reservation totals.

        Bulk readers (telemetry rollups) iterate this directly instead of
        calling :meth:`reserved` once per directed link.  Treat as
        read-only.
        """
        return self._reserved

    def reserved_total(self, link_id: str) -> float:
        """Reserved bytes/s on *link_id*, both directions summed."""
        return (self.reserved(link_id, "fwd") + self.reserved(link_id, "rev"))

    def utilization(self, link_id: str, direction: str) -> float:
        """Reserved fraction of one direction's capacity."""
        capacity = self.topology.link(link_id).capacity
        if capacity <= 0:
            return float("inf")
        return self.reserved(link_id, direction) / capacity

    def headroom_after(self, demand: LinkDemand, headroom: float) -> float:
        """Remaining capacity fraction after adding *demand* (can be < 0)."""
        capacity = self.topology.link(demand.link_id).capacity
        if capacity <= 0:
            return float("-inf")
        budget = capacity * headroom
        used = self.reserved(demand.link_id, demand.direction)
        return (budget - used - demand.bandwidth) / capacity

    def fits(self, candidate: CandidateRequirement, headroom: float) -> bool:
        """Whether every demand of *candidate* fits within *headroom*."""
        return all(
            self.headroom_after(demand, headroom) >= 0.0
            for demand in candidate.demands
        )

    def post_utilization(self, candidate: CandidateRequirement) -> float:
        """Max directed-link reserved utilization if *candidate* commits.

        The scheduler's objective: lower is better (more balanced fabric).
        """
        worst = 0.0
        for demand in candidate.demands:
            capacity = self.topology.link(demand.link_id).capacity
            if capacity <= 0:
                return float("inf")
            used = self.reserved(demand.link_id, demand.direction)
            worst = max(worst, (used + demand.bandwidth) / capacity)
        return worst

    def commit(self, intent_id: str, candidate: CandidateRequirement) -> None:
        """Record *candidate*'s demands under *intent_id*."""
        if intent_id in self._by_intent:
            raise AdmissionError(intent_id, "already committed")
        for demand in candidate.demands:
            key = _key(demand.link_id, demand.direction)
            self._reserved[key] = self._reserved.get(key, 0.0) + demand.bandwidth
        self._by_intent[intent_id] = list(candidate.demands)

    def release(self, intent_id: str) -> List[LinkDemand]:
        """Remove an intent's reservations; returns what was released."""
        demands = self._by_intent.pop(intent_id, None)
        if demands is None:
            raise AdmissionError(intent_id, "not committed")
        for demand in demands:
            key = _key(demand.link_id, demand.direction)
            remaining = self._reserved.get(key, 0.0) - demand.bandwidth
            if remaining <= 1e-9:
                self._reserved.pop(key, None)
            else:
                self._reserved[key] = remaining
        return demands

    def demands_of(self, intent_id: str) -> List[LinkDemand]:
        """The committed demands of one intent."""
        try:
            return list(self._by_intent[intent_id])
        except KeyError:
            raise AdmissionError(intent_id, "not committed") from None

    def committed_intents(self) -> List[str]:
        """Ids of all committed intents."""
        return list(self._by_intent)

    def tenant_floor(self, link_id: str, intent_ids: List[str]) -> float:
        """Total floor the given intents hold on *link_id* (both directions)."""
        total = 0.0
        for intent_id in intent_ids:
            for demand in self._by_intent.get(intent_id, []):
                if demand.link_id == link_id:
                    total += demand.bandwidth
        return total


@dataclass
class AdmissionDecision:
    """Outcome of one admission attempt.

    Attributes:
        intent_id: The intent decided on.
        admitted: Whether it was accepted.
        candidate: The committed candidate when admitted.
        reason: Rejection reason when not.
    """

    intent_id: str
    admitted: bool
    candidate: Optional[CandidateRequirement] = None
    reason: str = ""


class AdmissionController:
    """Capacity-checked admission against a ledger.

    Args:
        ledger: The shared reservation ledger.
        headroom: Admission budget as a fraction of link capacity
            (0.9 keeps 10% slack; 1.2 overcommits by 20%).
    """

    def __init__(self, ledger: ReservationLedger, headroom: float = 0.9) -> None:
        if headroom <= 0:
            raise ValueError(f"headroom must be > 0, got {headroom}")
        self.ledger = ledger
        self.headroom = headroom
        self.admitted_count = 0
        self.rejected_count = 0

    def feasible(self, compiled: CompiledIntent) -> List[CandidateRequirement]:
        """Candidates of *compiled* that currently fit the budget."""
        return [
            c for c in compiled.candidates
            if self.ledger.fits(c, self.headroom)
        ]

    def admit(self, compiled: CompiledIntent,
              candidate: CandidateRequirement) -> AdmissionDecision:
        """Commit *candidate* for *compiled*'s intent, re-checking fit."""
        intent_id = compiled.intent.intent_id
        if not self.ledger.fits(candidate, self.headroom):
            self.rejected_count += 1
            return AdmissionDecision(
                intent_id=intent_id, admitted=False,
                reason="insufficient capacity at commit time",
            )
        self.ledger.commit(intent_id, candidate)
        self.admitted_count += 1
        return AdmissionDecision(
            intent_id=intent_id, admitted=True, candidate=candidate,
        )

    def reject(self, compiled: CompiledIntent,
               reason: str) -> AdmissionDecision:
        """Record a rejection (for accounting symmetry)."""
        self.rejected_count += 1
        return AdmissionDecision(
            intent_id=compiled.intent.intent_id, admitted=False, reason=reason,
        )


# --------------------------------------------------------------------------
# Retry queue: backoff-parked re-admission.
# --------------------------------------------------------------------------


@dataclass
class ParkedIntent:
    """One intent waiting in the retry queue.

    Attributes:
        intent: The performance target still to be placed.
        parked_at: When it first failed to admit (simulated seconds).
        deadline: Absolute shed time; ``None`` waits indefinitely.
        attempts: Placement attempts so far (including the initial one).
        last_reason: The most recent failure's message.
    """

    intent: PerformanceTarget
    parked_at: float
    deadline: Optional[float]
    attempts: int = 1
    last_reason: str = ""


@dataclass(frozen=True)
class ShedRecord:
    """Why a parked intent was dropped instead of admitted.

    Attributes:
        intent_id: The shed intent.
        reason: ``"deadline"`` (parked past its deadline),
            ``"queue_full"`` (bounded queue overflowed), or
            ``"shutdown"`` (queue stopped with intents still parked).
        time: When it was shed (simulated seconds).
        attempts: Placement attempts made before giving up.
    """

    intent_id: str
    reason: str
    time: float
    attempts: int


class AdmissionRetryQueue:
    """Sim-clock-driven retry of intents that failed to place.

    ``submit`` tries an immediate placement; on any
    :class:`~repro.errors.HostNetError` the intent is parked and re-tried
    with exponential backoff plus jitter.  :meth:`kick` (wired to the
    manager's release hook) retries everything at the next engine instant,
    so capacity freed by a departure is claimed in bounded time rather
    than after a full backoff period.  The queue is bounded
    (``max_parked``); overflow and expired deadlines shed with a
    :class:`ShedRecord` so operators can account for every intent.

    Args:
        engine: The discrete-event engine driving retry timers.
        submit: Placement attempt, e.g. ``manager.submit``; must raise
            :class:`~repro.errors.HostNetError` on failure.
        base_delay: First backoff delay (seconds).
        multiplier: Backoff growth per failed attempt.
        max_delay: Backoff ceiling (seconds).
        jitter: Fractional uniform jitter applied to each delay
            (0.25 means ±25%), desynchronizing retry bursts.
        max_parked: Bound on simultaneously parked intents.
        seed: RNG seed for the jitter (determinism).
    """

    def __init__(
        self,
        engine,
        submit: Callable[[PerformanceTarget], object],
        *,
        base_delay: float = 0.002,
        multiplier: float = 2.0,
        max_delay: float = 0.05,
        jitter: float = 0.25,
        max_parked: int = 64,
        seed: int = 0,
    ) -> None:
        if base_delay <= 0 or max_delay <= 0 or multiplier < 1:
            raise ValueError("backoff parameters must be positive "
                             "(multiplier >= 1)")
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if max_parked <= 0:
            raise ValueError(f"max_parked must be > 0, got {max_parked}")
        self.engine = engine
        self._submit = submit
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.max_parked = max_parked
        self._rng = random.Random(seed)
        self._parked: Dict[str, ParkedIntent] = {}
        self._timers: Dict[str, object] = {}
        self._kick_pending = False
        self.shed: List[ShedRecord] = []
        self.admitted_after_retry = 0
        self._admit_listeners: List[Callable[[PerformanceTarget, object],
                                             None]] = []

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._parked)

    def parked(self) -> List[ParkedIntent]:
        """Currently parked intents, oldest first."""
        return list(self._parked.values())

    def is_parked(self, intent_id: str) -> bool:
        """Whether *intent_id* is waiting in the queue."""
        return intent_id in self._parked

    def on_admit(self, listener: Callable[[PerformanceTarget, object],
                                          None]) -> None:
        """Register a callback fired when a parked intent finally places."""
        self._admit_listeners.append(listener)

    # -- the front door -----------------------------------------------------

    def submit(self, intent: PerformanceTarget,
               deadline: Optional[float] = None):
        """Place *intent* now, or park it for retry.

        Returns the placement on immediate success, ``None`` when the
        intent was parked (or immediately shed — check :attr:`shed`).
        *deadline* is an absolute simulated time after which the intent
        is dropped rather than retried.
        """
        try:
            return self._attempt_submit(intent)
        except HostNetError as exc:
            self._park(intent, deadline, str(exc))
            return None

    def _attempt_submit(self, intent: PerformanceTarget):
        if not TRACER.enabled:
            return self._submit(intent)
        with TRACER.span("admission", "retry", {
            "intent": intent.intent_id,
        }):
            try:
                placement = self._submit(intent)
            except Exception as exc:
                TRACER.annotate(outcome=type(exc).__name__)
                raise
            TRACER.annotate(outcome="admitted")
            return placement

    # -- parking ------------------------------------------------------------

    def _park(self, intent: PerformanceTarget, deadline: Optional[float],
              reason: str) -> None:
        now = self.engine.now
        if deadline is not None and now >= deadline:
            self._shed(intent.intent_id, "deadline", attempts=1)
            return
        if len(self._parked) >= self.max_parked:
            self._shed(intent.intent_id, "queue_full", attempts=1)
            return
        entry = ParkedIntent(intent=intent, parked_at=now,
                             deadline=deadline, attempts=1,
                             last_reason=reason)
        self._parked[intent.intent_id] = entry
        self._arm(entry)
        if TRACER.enabled:
            TRACER.instant("admission", "park",
                           {"intent": intent.intent_id, "reason": reason})
        self._sample_depth()

    def _backoff(self, attempts: int) -> float:
        delay = min(self.base_delay * self.multiplier ** (attempts - 1),
                    self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def _arm(self, entry: ParkedIntent) -> None:
        intent_id = entry.intent.intent_id
        delay = self._backoff(entry.attempts)
        if entry.deadline is not None:
            # Never sleep past the deadline: fire then and shed on time.
            delay = min(delay, max(entry.deadline - self.engine.now, 0.0))
        old = self._timers.pop(intent_id, None)
        if old is not None:
            old.cancel()
        self._timers[intent_id] = self.engine.schedule_in(
            delay, lambda: self._retry(intent_id), label="admission-retry"
        )

    def _retry(self, intent_id: str) -> None:
        entry = self._parked.get(intent_id)
        if entry is None:
            return
        self._timers.pop(intent_id, None)
        now = self.engine.now
        if entry.deadline is not None and now >= entry.deadline:
            del self._parked[intent_id]
            self._shed(intent_id, "deadline", attempts=entry.attempts)
            self._sample_depth()
            return
        entry.attempts += 1
        try:
            placement = self._attempt_submit(entry.intent)
        except HostNetError as exc:
            entry.last_reason = str(exc)
            self._arm(entry)
            return
        del self._parked[intent_id]
        self.admitted_after_retry += 1
        self._sample_depth()
        for listener in self._admit_listeners:
            listener(entry.intent, placement)

    def _shed(self, intent_id: str, reason: str, attempts: int) -> None:
        record = ShedRecord(intent_id=intent_id, reason=reason,
                            time=self.engine.now, attempts=attempts)
        self.shed.append(record)
        if TRACER.enabled:
            TRACER.instant("admission", "shed",
                           {"intent": intent_id, "reason": reason})

    def _sample_depth(self) -> None:
        if TRACER.enabled:
            TRACER.counter("admission", "admission.parked_intents",
                           len(self._parked))

    # -- external triggers --------------------------------------------------

    def kick(self) -> None:
        """Retry every parked intent at the next engine instant.

        Wire this to :meth:`HostNetworkManager.on_release` (capacity just
        freed); coalesced so N same-instant releases trigger one sweep.
        """
        if self._kick_pending or not self._parked:
            return
        self._kick_pending = True
        self.engine.schedule_now(self._kicked, label="admission-kick")

    def _kicked(self) -> None:
        self._kick_pending = False
        for intent_id in list(self._parked):
            self._retry(intent_id)

    def stop(self, shed_remaining: bool = True) -> None:
        """Cancel all timers; optionally shed what's still parked."""
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        if shed_remaining:
            for intent_id, entry in list(self._parked.items()):
                self._shed(intent_id, "shutdown", attempts=entry.attempts)
            self._parked.clear()
            self._sample_depth()
