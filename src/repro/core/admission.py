"""Reservation ledger and admission control.

The ledger tracks, per directed link, how much bandwidth is promised to
admitted intents.  Admission is a pure capacity check: a candidate fits iff
every one of its directed demands leaves the link within
``capacity * headroom``.  Headroom < 1 keeps slack for system traffic and
model error; headroom > 1 deliberately overcommits (useful with
work-conserving tenants that rarely peak together).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import AdmissionError
from ..topology.graph import HostTopology
from .interpreter import CandidateRequirement, CompiledIntent, LinkDemand


def _key(link_id: str, direction: str) -> Tuple[str, str]:
    return (link_id, direction)


class ReservationLedger:
    """Per-directed-link bandwidth reservations of admitted intents."""

    def __init__(self, topology: HostTopology) -> None:
        self.topology = topology
        self._reserved: Dict[Tuple[str, str], float] = {}
        self._by_intent: Dict[str, List[LinkDemand]] = {}

    def reserved(self, link_id: str, direction: str) -> float:
        """Bytes/s currently reserved on one direction of *link_id*."""
        return self._reserved.get(_key(link_id, direction), 0.0)

    def reserved_total(self, link_id: str) -> float:
        """Reserved bytes/s on *link_id*, both directions summed."""
        return (self.reserved(link_id, "fwd") + self.reserved(link_id, "rev"))

    def utilization(self, link_id: str, direction: str) -> float:
        """Reserved fraction of one direction's capacity."""
        capacity = self.topology.link(link_id).capacity
        if capacity <= 0:
            return float("inf")
        return self.reserved(link_id, direction) / capacity

    def headroom_after(self, demand: LinkDemand, headroom: float) -> float:
        """Remaining capacity fraction after adding *demand* (can be < 0)."""
        capacity = self.topology.link(demand.link_id).capacity
        if capacity <= 0:
            return float("-inf")
        budget = capacity * headroom
        used = self.reserved(demand.link_id, demand.direction)
        return (budget - used - demand.bandwidth) / capacity

    def fits(self, candidate: CandidateRequirement, headroom: float) -> bool:
        """Whether every demand of *candidate* fits within *headroom*."""
        return all(
            self.headroom_after(demand, headroom) >= 0.0
            for demand in candidate.demands
        )

    def post_utilization(self, candidate: CandidateRequirement) -> float:
        """Max directed-link reserved utilization if *candidate* commits.

        The scheduler's objective: lower is better (more balanced fabric).
        """
        worst = 0.0
        for demand in candidate.demands:
            capacity = self.topology.link(demand.link_id).capacity
            if capacity <= 0:
                return float("inf")
            used = self.reserved(demand.link_id, demand.direction)
            worst = max(worst, (used + demand.bandwidth) / capacity)
        return worst

    def commit(self, intent_id: str, candidate: CandidateRequirement) -> None:
        """Record *candidate*'s demands under *intent_id*."""
        if intent_id in self._by_intent:
            raise AdmissionError(intent_id, "already committed")
        for demand in candidate.demands:
            key = _key(demand.link_id, demand.direction)
            self._reserved[key] = self._reserved.get(key, 0.0) + demand.bandwidth
        self._by_intent[intent_id] = list(candidate.demands)

    def release(self, intent_id: str) -> List[LinkDemand]:
        """Remove an intent's reservations; returns what was released."""
        demands = self._by_intent.pop(intent_id, None)
        if demands is None:
            raise AdmissionError(intent_id, "not committed")
        for demand in demands:
            key = _key(demand.link_id, demand.direction)
            remaining = self._reserved.get(key, 0.0) - demand.bandwidth
            if remaining <= 1e-9:
                self._reserved.pop(key, None)
            else:
                self._reserved[key] = remaining
        return demands

    def demands_of(self, intent_id: str) -> List[LinkDemand]:
        """The committed demands of one intent."""
        try:
            return list(self._by_intent[intent_id])
        except KeyError:
            raise AdmissionError(intent_id, "not committed") from None

    def committed_intents(self) -> List[str]:
        """Ids of all committed intents."""
        return list(self._by_intent)

    def tenant_floor(self, link_id: str, intent_ids: List[str]) -> float:
        """Total floor the given intents hold on *link_id* (both directions)."""
        total = 0.0
        for intent_id in intent_ids:
            for demand in self._by_intent.get(intent_id, []):
                if demand.link_id == link_id:
                    total += demand.bandwidth
        return total


@dataclass
class AdmissionDecision:
    """Outcome of one admission attempt.

    Attributes:
        intent_id: The intent decided on.
        admitted: Whether it was accepted.
        candidate: The committed candidate when admitted.
        reason: Rejection reason when not.
    """

    intent_id: str
    admitted: bool
    candidate: Optional[CandidateRequirement] = None
    reason: str = ""


class AdmissionController:
    """Capacity-checked admission against a ledger.

    Args:
        ledger: The shared reservation ledger.
        headroom: Admission budget as a fraction of link capacity
            (0.9 keeps 10% slack; 1.2 overcommits by 20%).
    """

    def __init__(self, ledger: ReservationLedger, headroom: float = 0.9) -> None:
        if headroom <= 0:
            raise ValueError(f"headroom must be > 0, got {headroom}")
        self.ledger = ledger
        self.headroom = headroom
        self.admitted_count = 0
        self.rejected_count = 0

    def feasible(self, compiled: CompiledIntent) -> List[CandidateRequirement]:
        """Candidates of *compiled* that currently fit the budget."""
        return [
            c for c in compiled.candidates
            if self.ledger.fits(c, self.headroom)
        ]

    def admit(self, compiled: CompiledIntent,
              candidate: CandidateRequirement) -> AdmissionDecision:
        """Commit *candidate* for *compiled*'s intent, re-checking fit."""
        intent_id = compiled.intent.intent_id
        if not self.ledger.fits(candidate, self.headroom):
            self.rejected_count += 1
            return AdmissionDecision(
                intent_id=intent_id, admitted=False,
                reason="insufficient capacity at commit time",
            )
        self.ledger.commit(intent_id, candidate)
        self.admitted_count += 1
        return AdmissionDecision(
            intent_id=intent_id, admitted=True, candidate=candidate,
        )

    def reject(self, compiled: CompiledIntent,
               reason: str) -> AdmissionDecision:
        """Record a rejection (for accounting symmetry)."""
        self.rejected_count += 1
        return AdmissionDecision(
            intent_id=compiled.intent.intent_id, admitted=False, reason=reason,
        )
