"""The dynamic resource arbiter (§3.2).

Enforces the schedule at run time: periodically observes per-tenant usage
on every managed link, computes rate caps that protect admitted floors, and
pushes them into the fabric — after a configurable *decision latency*, the
end-to-end time to sense, decide, and program an enforcement point.  §3.2
Q3 asks how small that latency must be; E7 sweeps it and measures how
isolation degrades as enforcement goes stale.

Allocation rule per managed link (each adjustment round):

1. every guaranteed tenant's cap is at least its floor, always — so a
   returning tenant can start reclaiming immediately;
2. the distributable spare is ``capacity - sum(floors)`` **plus the
   unused part of idle tenants' floors** (ElasticSwitch-style lending:
   guaranteed bandwidth nobody is using works for others);
3. spare is distributed by *demand-aware water-filling*: each tenant's
   spare demand is estimated from its observed usage beyond its floor
   (doubled, to let it grow between rounds, plus a small ramp allowance
   so idle tenants can signal); leftover is split equally.

Lending is what makes the fabric work-conserving, and it is also the
source of the staleness window E7 measures: when an idle guarantee-holder
bursts back, borrowed bandwidth is only reclaimed at the next adjustment
(plus the decision latency), so floors can dip transiently.  Larger
decision latencies mean longer dips — §3.2 Q3 quantified.

Non-work-conserving mode pins guaranteed tenants exactly at their floors
and splits the static spare among best-effort tenants — predictable and
dip-free, but it strands every idle guarantee (the E6/E9 trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ArbiterError
from ..sim.engine import PeriodicTask
from ..trace.recorder import TRACER
from ..sim.network import SYSTEM_TENANT, FabricNetwork
from ..units import us

#: Usage below this (bytes/s) counts as inactive.
_ACTIVE_EPSILON = 1.0

#: Minimum cap handed to an inactive best-effort tenant so it can ramp up.
_RAMP_ALLOWANCE_FRACTION = 0.02

#: How far beyond observed usage a tenant's spare-demand estimate reaches;
#: 2.0 lets a growing tenant double every adjustment round.
_GROWTH_FACTOR = 2.0

#: A guaranteed tenant using less than this fraction of its floor is
#: *parked*: its unused floor is lent out.  Any usage above the threshold
#: reclaims the floor at the next adjustment — lending on raw usage alone
#: would deadlock (a squeezed owner can never ramp back through borrowed
#: capacity).
_PARK_FRACTION = 0.1


@dataclass(frozen=True)
class LinkAllocation:
    """One adjustment-round outcome for a link (for introspection/tests)."""

    link_id: str
    capacity: float
    floors: Dict[str, float]
    usages: Dict[str, float]
    caps: Dict[str, float]


def compute_caps(
    capacity: float,
    floors: Dict[str, float],
    usages: Dict[str, float],
    best_effort: Set[str],
    work_conserving: bool,
    utilization_ceiling: float = 1.0,
    lend_parked_floors: bool = True,
    demand_aware: bool = True,
) -> Dict[str, float]:
    """The arbiter's per-link allocation rule (see module docstring).

    Args:
        capacity: Per-direction link capacity (bytes/s).
        floors: Guaranteed floor per guaranteed tenant.
        usages: Observed rate per tenant (guaranteed and best-effort).
        best_effort: Tenants present without any floor on this link.
        work_conserving: Whether unused guarantees are redistributable.
        utilization_ceiling: Fraction of capacity the allocator may hand
            out in total.  Latency SLOs compile to ceilings < 1 (queueing
            delay explodes near saturation), trading some work
            conservation for a bounded tail.  Floors always fit first —
            guarantees beat the ceiling if they conflict.
        lend_parked_floors: Whether idle guarantees join the spare
            (the ElasticSwitch-style lending; off = hard reservations).
            Ablation knob — production use leaves it on.
        demand_aware: Whether the spare is water-filled by usage-derived
            demand estimates (off = split equally among active sharers).
            Ablation knob — production use leaves it on.

    Returns:
        Rate cap per tenant (every tenant in *floors* or *best_effort*).
    """
    if not 0 < utilization_ceiling <= 1:
        raise ValueError("utilization_ceiling must be in (0, 1]")
    budget = capacity * utilization_ceiling
    reserved = sum(floors.values())
    spare = max(budget - reserved, 0.0)
    allowance = capacity * _RAMP_ALLOWANCE_FRACTION
    tenants = set(floors) | set(best_effort)

    caps: Dict[str, float] = {}
    if (work_conserving and demand_aware and tenants
            and not any(usages.values())):
        # All-idle fast path: every floor is parked and every demand
        # estimate collapses to the ramp allowance, so the water-fill
        # reduces to an equal split of the (lent) spare.
        if lend_parked_floors:
            spare += reserved
        share = spare / len(tenants)
        for tenant in tenants:
            caps[tenant] = floors.get(tenant, 0.0) + share
        for tenant in best_effort:
            caps[tenant] = max(caps[tenant], allowance)
        return caps
    if not work_conserving:
        for tenant, floor in floors.items():
            caps[tenant] = floor
        if best_effort:
            be_share = spare / len(best_effort)
            for tenant in best_effort:
                caps[tenant] = max(be_share, allowance)
        return caps

    # Lend *parked* guarantees: a floor whose owner is clearly idle joins
    # the distributable spare.  Reclaim happens one round after the owner
    # shows any real usage again — the staleness window E7 measures.
    if lend_parked_floors:
        spare += sum(
            max(floor - usages.get(tenant, 0.0), 0.0)
            for tenant, floor in floors.items()
            if usages.get(tenant, 0.0) < _PARK_FRACTION * floor
        )

    # Demand-aware water-filling of the spare.  A tenant's estimated spare
    # demand is its observed usage beyond its floor, doubled so it can keep
    # growing, plus the ramp allowance so an idle tenant still gets a
    # toehold to signal demand with.
    if demand_aware:
        estimates = {
            tenant: max(usages.get(tenant, 0.0)
                        - floors.get(tenant, 0.0), 0.0)
            * _GROWTH_FACTOR + allowance
            for tenant in tenants
        }
        allocation = _waterfill(spare, estimates)
    else:
        # Ablation: equal split among active sharers (plus all guaranteed
        # tenants, whose floors must be claimable instantly).
        active = {t for t in tenants
                  if usages.get(t, 0.0) > _ACTIVE_EPSILON}
        sharers = active | set(floors)
        share = spare / len(sharers) if sharers else 0.0
        allocation = {t: (share if t in sharers else allowance)
                      for t in tenants}
    for tenant in tenants:
        caps[tenant] = floors.get(tenant, 0.0) + allocation[tenant]
    for tenant in best_effort:
        caps[tenant] = max(caps[tenant], allowance)
    return caps


def _waterfill(budget: float, demands: Dict[str, float]) -> Dict[str, float]:
    """Classic water-filling: satisfy demands fairly, split any leftover.

    Each round gives every unsatisfied claimant an equal share, capped at
    its demand; leftover re-enters the pool.  Budget remaining after every
    demand is met is split equally among all claimants (so anyone may grow
    past its estimate next round).
    """
    if not demands:
        return {}
    # Fast path: when the pool covers every demand (the common case on a
    # lightly loaded link, and always when usages are zero), the rounds
    # below reduce to demand-plus-equal-bonus in one pass.
    total_demand = sum(demands.values())
    if total_demand <= budget:
        bonus = (budget - total_demand) / len(demands)
        return {tenant: demand + bonus
                for tenant, demand in demands.items()}
    allocation = {tenant: 0.0 for tenant in demands}
    unsatisfied = {t for t, d in demands.items() if d > 0}
    remaining = budget
    while unsatisfied and remaining > 1e-9:
        share = remaining / len(unsatisfied)
        progressed = False
        for tenant in list(unsatisfied):
            need = demands[tenant] - allocation[tenant]
            grant = min(share, need)
            if grant > 0:
                allocation[tenant] += grant
                remaining -= grant
                progressed = True
            if allocation[tenant] >= demands[tenant] - 1e-9:
                unsatisfied.discard(tenant)
        if not progressed:
            break
    if remaining > 1e-9:
        bonus = remaining / len(demands)
        for tenant in allocation:
            allocation[tenant] += bonus
    return allocation


class DynamicArbiter:
    """Periodic, delayed enforcement of floors over a live fabric.

    Args:
        network: The fabric to control.
        period: Adjustment period (seconds).
        decision_latency: Sense-decide-program delay before newly computed
            caps take effect (seconds) — §3.2 Q3's knob.
        work_conserving: Allocation mode (see :func:`compute_caps`).
    """

    def __init__(
        self,
        network: FabricNetwork,
        period: float = 0.001,
        decision_latency: float = us(10),
        work_conserving: bool = True,
        lend_parked_floors: bool = True,
        demand_aware: bool = True,
        degradation_aware: bool = False,
    ) -> None:
        if period <= 0:
            raise ArbiterError(f"period must be > 0, got {period}")
        if decision_latency < 0:
            raise ArbiterError("decision_latency must be >= 0")
        self.network = network
        self.period = period
        self.decision_latency = decision_latency
        self.work_conserving = work_conserving
        self.lend_parked_floors = lend_parked_floors
        self.demand_aware = demand_aware
        #: Allocate against *effective* (degradation-aware) capacity rather
        #: than the spec sheet.  Off by default — the baseline arbiter
        #: trusts the datasheet, which is exactly the blind spot §3.1's
        #: silent-degradation case exploits; the recovery controller flips
        #: this on so caps stop overcommitting degraded links.
        self.degradation_aware = degradation_aware

        # (link, direction) -> tenant -> floor.  Links are full duplex, so
        # guarantees are enforced per direction (a 50 Gbps ingress floor
        # must not be satisfiable with egress bandwidth).
        self._floors: Dict[Tuple[str, str], Dict[str, float]] = {}
        # link -> {owner: ceiling}; the strictest owner wins per link.
        self._ceilings: Dict[str, Dict[str, float]] = {}
        self._best_effort: Set[str] = set()
        self._task: Optional[PeriodicTask] = None
        self._capped: Set[tuple] = set()
        # Event-driven cadence: once a round quiesces (skipped — nothing
        # can have changed), the periodic task parks itself; any fabric
        # re-solve or configuration change re-arms it.  An idle host thus
        # schedules no arbiter events at all, which is what lets the
        # fleet's event clock skip it entirely.
        self._running = False
        self._subscribed = False

        # Quiescence: an adjustment round is a pure function of the
        # arbiter's configuration (floors, ceilings, best-effort set,
        # mode flags) and the fabric state (flows, caps, link health —
        # all funnelled through the network's recompute counter).  When
        # neither input has changed since the last computed round, the
        # round would re-derive byte-identical caps, so it is skipped.
        self._config_version = 0
        self._quiesced_state: Optional[tuple] = None
        # Per-directed-link incremental state.  A link's allocation is a
        # pure function of a small input signature (its floor version, the
        # best-effort roster version, capacity, ceiling, usage state, mode
        # flags); churn moves one link's floors at a time, so most links
        # present an unchanged signature each round and reuse their cached
        # allocation — and caps are re-programmed into the fabric only for
        # links whose signature moved since the last emission.
        self._floor_versions: Dict[Tuple[str, str], int] = {}
        self._best_effort_version = 0
        self._link_cache: Dict[Tuple[str, str], tuple] = {}
        self._emitted_sig: Dict[Tuple[str, str], tuple] = {}
        self._emitted_caps: Dict[Tuple[str, str], Dict[str, float]] = {}
        self._applying = False
        # When the round's global inputs (roster, modes, usage state,
        # recompute counter) are unchanged, only keys explicitly dirtied
        # by a floor/ceiling mutation can differ — the loop reuses every
        # other key's cached allocation without even rebuilding its
        # signature.
        self._dirty_keys: Set[Tuple[str, str]] = set()
        self._last_round_globals: Optional[tuple] = None

        self.adjustments = 0
        self.skipped_adjustments = 0
        self.last_allocations: List[LinkAllocation] = []

    # -- configuration ----------------------------------------------------------

    def _floor_keys(self, link_id: str,
                    direction: Optional[str]) -> List[Tuple[str, str]]:
        if direction is None:
            return [(link_id, "fwd"), (link_id, "rev")]
        if direction not in ("fwd", "rev"):
            raise ArbiterError(f"direction must be fwd/rev/None, "
                               f"got {direction!r}")
        return [(link_id, direction)]

    def add_floor(self, tenant_id: str, link_id: str, bandwidth: float,
                  direction: Optional[str] = None) -> None:
        """Add *bandwidth* to a tenant's guaranteed floor on *link_id*.

        With *direction* (``"fwd"``/``"rev"``) the floor binds one
        direction; without it, the guarantee is installed in both
        directions (bidirectional intents, simple callers).
        """
        if bandwidth <= 0:
            raise ArbiterError("floor bandwidth must be > 0")
        self.network.topology.link(link_id)  # validate
        self._config_changed()
        for key in self._floor_keys(link_id, direction):
            per_tenant = self._floors.setdefault(key, {})
            per_tenant[tenant_id] = per_tenant.get(tenant_id, 0.0) + bandwidth
            self._floor_versions[key] = self._floor_versions.get(key, 0) + 1
            self._dirty_keys.add(key)

    def remove_floor(self, tenant_id: str, link_id: str,
                     bandwidth: float,
                     direction: Optional[str] = None) -> None:
        """Subtract *bandwidth* from a floor (removing it at zero)."""
        self._config_changed()
        for key in self._floor_keys(link_id, direction):
            per_tenant = self._floors.get(key, {})
            current = per_tenant.get(tenant_id)
            if current is None:
                raise ArbiterError(
                    f"no floor for tenant {tenant_id!r} on "
                    f"{key[0]!r}/{key[1]}"
                )
            remaining = current - bandwidth
            if remaining <= 1e-9:
                del per_tenant[tenant_id]
                if not per_tenant:
                    del self._floors[key]
            else:
                per_tenant[tenant_id] = remaining
            self._floor_versions[key] = self._floor_versions.get(key, 0) + 1
            self._dirty_keys.add(key)

    def set_utilization_ceiling(self, owner: str, link_id: str,
                                ceiling: float) -> None:
        """Bound the fraction of *link_id* the allocator may hand out.

        Latency SLOs compile to per-link ceilings: capping utilization
        bounds queueing inflation.  Multiple owners (intents) may set
        ceilings on one link; the strictest applies.  The link must also
        carry at least one floor for the arbiter to manage it.
        """
        if not 0 < ceiling <= 1:
            raise ArbiterError("ceiling must be in (0, 1]")
        self.network.topology.link(link_id)  # validate
        self._config_changed()
        self._ceilings.setdefault(link_id, {})[owner] = ceiling
        self._dirty_keys.update(((link_id, "fwd"), (link_id, "rev")))

    def clear_utilization_ceiling(self, owner: str, link_id: str) -> None:
        """Remove one owner's ceiling on *link_id* (no-op if absent)."""
        owners = self._ceilings.get(link_id)
        if owners is not None and owner in owners:
            self._config_changed()
            del owners[owner]
            if not owners:
                del self._ceilings[link_id]
            self._dirty_keys.update(((link_id, "fwd"), (link_id, "rev")))

    def ceiling_on(self, link_id: str) -> float:
        """The effective (strictest) ceiling on *link_id*; 1.0 if none."""
        owners = self._ceilings.get(link_id)
        if not owners:
            return 1.0
        return min(owners.values())

    def register_best_effort(self, tenant_id: str) -> None:
        """Mark a tenant as best-effort (subject to caps, no floor)."""
        if tenant_id not in self._best_effort:
            self._config_changed()
            self._best_effort_version += 1
            self._best_effort.add(tenant_id)

    def unregister_best_effort(self, tenant_id: str) -> None:
        """Remove a tenant from best-effort tracking and lift its caps."""
        if tenant_id in self._best_effort:
            self._config_changed()
            self._best_effort_version += 1
            self._best_effort.discard(tenant_id)
        self._lift_tenant_caps(tenant_id)

    def floors_on(self, link_id: str,
                  direction: Optional[str] = None) -> Dict[str, float]:
        """Current floors on *link_id*.

        With *direction*, that direction's floors; without, the per-tenant
        maximum across directions (the effective guarantee level).
        """
        if direction is not None:
            return dict(self._floors.get((link_id, direction), {}))
        merged: Dict[str, float] = {}
        for d in ("fwd", "rev"):
            for tenant, floor in self._floors.get((link_id, d), {}).items():
                merged[tenant] = max(merged.get(tenant, 0.0), floor)
        return merged

    def managed_links(self) -> List[str]:
        """Links with at least one floor (either direction), deduplicated."""
        seen: List[str] = []
        for link_id, _direction in self._floors:
            if link_id not in seen:
                seen.append(link_id)
        return seen

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic adjustment (self-pausing while quiesced)."""
        if self._running:
            raise ArbiterError("arbiter already started")
        self._running = True
        self._arm()
        if not self._subscribed:
            self._subscribed = True
            self.network.on_recompute(self._fabric_changed)

    def _arm(self) -> None:
        if self._task is None:
            self._task = self.network.engine.schedule_every(
                self.period, self.adjust_once, label="arbiter-adjust"
            )

    def _park(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _fabric_changed(self) -> None:
        # Runs on every fabric re-solve — the one signal that can move a
        # quiesced arbiter's inputs (flow rates, link health, caps).  Our
        # own enforcement batch also re-solves; _apply suppresses the
        # self-wake and decides quiescence itself.
        if self._running and not self._applying:
            self._arm()

    def _config_changed(self) -> None:
        # Every configuration mutation funnels through here: bump the
        # round fingerprint and un-park the periodic task.
        self._config_version += 1
        if self._running:
            self._arm()

    def stop(self, lift_caps: bool = True) -> None:
        """Stop adjusting; optionally lift every cap the arbiter set."""
        self._running = False
        self._park()
        if lift_caps:
            with self.network.batch():
                for tenant_id, link_id, direction in list(self._capped):
                    self.network.clear_tenant_link_cap(tenant_id, link_id,
                                                       direction=direction)
            self._capped.clear()
            self._emitted_sig.clear()
            self._emitted_caps.clear()

    # -- the control loop -------------------------------------------------------

    def adjust_once(self) -> List[LinkAllocation]:
        """One sense-decide round; caps apply after ``decision_latency``."""
        if not TRACER.enabled:
            return self._adjust_once_untracked()
        with TRACER.span("arbiter", "adjust", {
            "directed_links": len(self._floors),
            "best_effort_tenants": len(self._best_effort),
        }):
            allocations = self._adjust_once_untracked()
            TRACER.annotate(allocations=len(allocations))
            return allocations

    def _input_fingerprint(self) -> tuple:
        """Everything an adjustment round's outcome depends on.

        The mode flags are included by value because the recovery
        controller flips ``degradation_aware`` by direct assignment; the
        network's recompute counter stands in for all fabric state (any
        flow, cap, or link-health change re-solves exactly once).
        """
        self.network.flush_recompute()
        return (
            self._config_version,
            self.work_conserving,
            self.lend_parked_floors,
            self.demand_aware,
            self.degradation_aware,
            self.network.recompute_count,
        )

    def _adjust_once_untracked(self) -> List[LinkAllocation]:
        self.adjustments += 1
        fingerprint = self._input_fingerprint()
        if fingerprint == self._quiesced_state:
            self.skipped_adjustments += 1
            # Quiesced: nothing can move the outcome until a fabric
            # re-solve or a config change, and both re-arm the task.
            self._park()
            return self.last_allocations
        allocations: List[LinkAllocation] = []
        pending: List[tuple] = []
        # On a fabric with no live flows every usage reading is zero; any
        # nonzero rate can only change when the fabric re-solves, so the
        # recompute counter stands in for all usage state.
        fabric_idle = not self.network.active_flows()
        usage_token = "idle" if fabric_idle else self.network.recompute_count
        mode = (self.work_conserving, self.lend_parked_floors,
                self.demand_aware)
        # With unchanged global inputs, only explicitly-dirtied keys can
        # produce a different allocation (capacity cannot move without a
        # recompute, and every floor/ceiling mutation dirties its key) —
        # everything else reuses its cached allocation wholesale.
        round_globals = (self._best_effort_version, mode, usage_token,
                         self.network.recompute_count,
                         self.degradation_aware)
        clean_globals = round_globals == self._last_round_globals
        dirty_keys = self._dirty_keys
        link_cache = self._link_cache
        topology_link = self.network.topology.link
        for key, floors in self._floors.items():
            if clean_globals and key not in dirty_keys:
                cached = link_cache.get(key)
                if cached is not None:
                    allocations.append(cached[1])
                    continue
            link_id, direction = key
            link = topology_link(link_id)
            # By default the arbiter believes the spec sheet; in
            # degradation-aware mode it allocates what the link can
            # actually carry right now.
            capacity = (link.effective_capacity if self.degradation_aware
                        else link.capacity)
            sig = (self._floor_versions.get(key, 0),
                   self._best_effort_version, capacity,
                   self.ceiling_on(link_id), usage_token, mode)
            cached = self._link_cache.get(key)
            if cached is not None and cached[0] == sig:
                allocation, caps = cached[1], cached[2]
            else:
                tenants = set(floors) | self._best_effort
                tenants.discard(SYSTEM_TENANT)
                if fabric_idle:
                    usages = dict.fromkeys(tenants, 0.0)
                else:
                    usages = {
                        tenant: self.network.tenant_link_rate(
                            tenant, link_id, direction)
                        for tenant in tenants
                    }
                best_effort_here = {
                    t for t in self._best_effort if t not in floors
                }
                caps = compute_caps(
                    capacity=capacity, floors=dict(floors), usages=usages,
                    best_effort=best_effort_here,
                    work_conserving=self.work_conserving,
                    utilization_ceiling=self.ceiling_on(link_id),
                    lend_parked_floors=self.lend_parked_floors,
                    demand_aware=self.demand_aware,
                )
                allocation = LinkAllocation(
                    link_id=f"{link_id}|{direction}", capacity=capacity,
                    floors=dict(floors), usages=usages, caps=dict(caps),
                )
                self._link_cache[key] = (sig, allocation, caps)
            allocations.append(allocation)
            # Emit caps into the fabric only when this link's inputs moved
            # since the last emission — the programmed caps are still
            # exactly these values otherwise.
            if self._emitted_sig.get(key) != sig:
                self._emitted_sig[key] = sig
                emitted = self._emitted_caps.setdefault(key, {})
                for tenant, cap in caps.items():
                    # Within a changed link, most tenants usually keep the
                    # same cap (equal shares of an unchanged pool); only
                    # program the ones that actually moved.
                    if emitted.get(tenant) != cap:
                        emitted[tenant] = cap
                        pending.append((tenant, link_id, direction, cap))
        dirty_keys.clear()
        self._last_round_globals = round_globals

        if pending:
            if self.decision_latency > 0:
                self.network.engine.schedule_in(
                    self.decision_latency,
                    lambda batch=pending: self._apply(batch),
                    label="arbiter-apply",
                )
            else:
                self._apply(pending)
        self.last_allocations = allocations
        # Snapshot taken *after* any synchronous apply: if the caps this
        # round installed changed nothing (or once a delayed apply turns
        # out to be a no-op next round), the fingerprint stabilizes and
        # subsequent rounds skip until some input actually moves.
        self._quiesced_state = self._input_fingerprint()
        return allocations

    def _apply(self, batch: List[tuple]) -> None:
        # One enforcement round programs every cap in a single fabric
        # re-solve; the incremental solver then only re-solves the
        # components whose caps actually changed since last round.
        if TRACER.enabled:
            TRACER.begin("arbiter", "enforce", {
                "caps": len(batch),
                "tenants": len({entry[0] for entry in batch}),
            })
        # Flush any recompute other components queued before this apply so
        # their listeners (including our own re-arm) run un-suppressed.
        before = self._input_fingerprint()
        self._applying = True
        try:
            with self.network.batch():
                for tenant, link_id, direction, cap in batch:
                    self.network.set_tenant_link_cap(tenant, link_id, cap,
                                                     direction=direction)
                    self._capped.add((tenant, link_id, direction))
            if (before == self._quiesced_state
                    and not self.network.active_flows()):
                # The only thing that moved since the decide round is our
                # own enforcement, and with no live flows the new caps
                # cannot change any reading the next round would sense:
                # fold the apply into the quiesced state instead of waking
                # up just to discover a no-op.
                self._quiesced_state = self._input_fingerprint()
                if self._last_round_globals is not None:
                    # Same reasoning for the per-key fast loop: advance its
                    # recompute component past our own enforcement so the
                    # next round still treats untouched keys as clean.
                    g = self._last_round_globals
                    self._last_round_globals = (
                        g[:3] + (self.network.recompute_count,) + g[4:]
                    )
            elif self._running:
                self._arm()
        finally:
            self._applying = False
            if TRACER.enabled:
                TRACER.end()

    def _lift_tenant_caps(self, tenant_id: str) -> None:
        stale = [key for key in self._capped if key[0] == tenant_id]
        with self.network.batch():
            for tenant, link_id, direction in stale:
                self.network.clear_tenant_link_cap(tenant, link_id,
                                                   direction=direction)
                self._capped.discard((tenant, link_id, direction))
                # Caps were cleared behind the emission tracking: the next
                # round must re-program this link even if its inputs are
                # otherwise unchanged.
                self._emitted_sig.pop((link_id, direction), None)
                self._emitted_caps.get((link_id, direction), {}).pop(
                    tenant, None)

    def lift_link_caps(self, link_id: str) -> None:
        """Lift every cap on *link_id* (after its last floor is released)."""
        stale = [key for key in self._capped if key[1] == link_id]
        with self.network.batch():
            for tenant, link, direction in stale:
                self.network.clear_tenant_link_cap(tenant, link,
                                                   direction=direction)
                self._capped.discard((tenant, link, direction))
                self._emitted_sig.pop((link, direction), None)
                self._emitted_caps.pop((link, direction), None)
