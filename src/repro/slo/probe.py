"""Sampled in-situ latency probes over a host's placed sessions.

A :class:`LatencyProbe` rides a host's own event engine: every
``probe_period`` it walks the manager's placement ledger (striding to
bound overhead, the sampling knob the paper's line-rate histogram work
leans on), evaluates each sampled session's primary path against the
analytic :class:`~repro.sim.latency.LatencyModel` at the fabric's
*current* utilization and link state, and folds the result into
per-(tenant, path) :class:`~repro.slo.histogram.LatencyHistogram`
buckets.

Two consumption paths, matching the fleet's two execution modes:

* the raw ``(time, tenant, path, value)`` samples accumulate in a delta
  buffer drained by :meth:`take_delta` — serially by
  ``Fleet.advance_to``, in parallel piggybacked on every worker reply
  next to the dirty-host telemetry delta — and are folded fleet-side by
  :class:`~repro.slo.monitor.FleetSloMonitor`;
* when a listener is attached (a standalone managed host wiring alerts
  into its :class:`~repro.resilience.controller.RecoveryController`),
  the probe also evaluates its objectives' burn rates locally and fires
  :class:`~repro.slo.objective.SloAlert` callbacks itself.  Fleet
  workers attach no listener, so they pay no tracker cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..errors import SloError
from ..sim.latency import LatencyModel
from ..units import us
from .histogram import LatencyHistogram
from .objective import BurnRateTracker, SloAlert, SloObjective


@dataclass(frozen=True)
class SloConfig:
    """Latency-observability knobs for one host (or a whole fleet).

    Attributes:
        objectives: The :class:`SloObjective` set evaluated over the
            probe stream.  May be empty (histograms only, no alerts).
        probe_period: Seconds between probe sweeps of the placement
            ledger.
        sample_stride: Sample every k-th placement per sweep, rotating
            the phase each tick so every session is still covered —
            the overhead/coverage trade-off knob.
        message_size: Probe transfer size in bytes; the serialization
            term is what makes capacity degradation visible on an
            otherwise idle fabric.
        model: The analytic latency model probes are evaluated against.
        keep_samples: Fleet-monitor knob — retain every raw sample for
            offline attainment analysis (scenario reports); off by
            default to bound memory.
    """

    objectives: Tuple[SloObjective, ...] = ()
    probe_period: float = 0.002
    sample_stride: int = 1
    message_size: float = float(1 << 20)
    model: LatencyModel = field(default_factory=LatencyModel)
    keep_samples: bool = False

    def __post_init__(self) -> None:
        if self.probe_period <= 0:
            raise SloError(
                f"probe_period must be > 0, got {self.probe_period}")
        if self.sample_stride < 1:
            raise SloError(
                f"sample_stride must be >= 1, got {self.sample_stride}")
        if self.message_size < 0:
            raise SloError(
                f"message_size must be >= 0, got {self.message_size}")
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise SloError(f"duplicate objective names in {names}")

    @classmethod
    def default(cls, bound: float = us(200), **kwargs) -> "SloConfig":
        """A one-objective config: fleet-wide p99 under *bound*."""
        return cls(objectives=(SloObjective("p99-latency", bound),),
                   **kwargs)


def normalize_slo(
    slo: Union[None, bool, SloConfig, SloObjective],
) -> Optional[SloConfig]:
    """Coerce the ``slo=`` constructor argument to a config (or None).

    Accepts ``None``/``False`` (disabled), ``True`` (the default
    config), a full :class:`SloConfig`, or a single
    :class:`SloObjective`.
    """
    if slo is None or slo is False:
        return None
    if slo is True:
        return SloConfig.default()
    if isinstance(slo, SloConfig):
        return slo
    if isinstance(slo, SloObjective):
        return SloConfig(objectives=(slo,))
    raise SloError(
        f"slo= takes None, True, an SloConfig, or an SloObjective; "
        f"got {slo!r}")


class LatencyProbe:
    """Periodic sampled latency evaluation over one host's placements.

    Args:
        network: The host's :class:`~repro.sim.network.FabricNetwork`
            (engine, topology, and live link utilization).
        manager: The host's manager; its placement ledger is the probe
            target list.
        config: The :class:`SloConfig`.
    """

    def __init__(self, network, manager, config: SloConfig) -> None:
        # Imported here, not at module level: repro.slo must stay
        # importable before repro.fleet finishes initializing (fleet's
        # cluster module imports this package at its own module level).
        from ..fleet.telemetry import canonical_device_keys

        self.network = network
        self.manager = manager
        self.config = config
        self._keys = canonical_device_keys(network.topology)
        self._path_keys: Dict[Tuple[str, Optional[str]], str] = {}
        self._histograms: Dict[Tuple[str, str], LatencyHistogram] = {}
        self._delta: List[Tuple[float, str, str, float]] = []
        self._trackers = {o.name: BurnRateTracker(o)
                          for o in config.objectives}
        self._listeners: List[Callable[[SloAlert], None]] = []
        self._tick_index = 0
        self._epoch = 0.0
        self._fires = 0
        self._task = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic probe sweep on the host engine.

        Sweeps self-schedule on the exact grid ``epoch + k * period``
        (multiplication, never accumulation): a plain
        :meth:`~repro.sim.engine.Engine.schedule_every` loop drifts by a
        few ulps per fire, and a probe tick that lands within the fleet
        clock's epsilon of an advance boundary — but not bit-equal to it
        — executes under the event discipline and not under lockstep,
        breaking the cross-clock determinism contract.  On the exact
        grid a coinciding tick is bit-equal to the boundary and runs
        under every discipline identically.
        """
        if self._task is not None:
            raise SloError("latency probe already started")
        self._epoch = self.network.engine.now
        self._fires = 0
        self._schedule_next()

    def _schedule_next(self) -> None:
        self._fires += 1
        due = self._epoch + self._fires * self.config.probe_period
        self._task = self.network.engine.schedule_at(
            due, self._fire, label="slo-probe")

    def _fire(self) -> None:
        self._tick()
        self._schedule_next()

    def stop(self) -> None:
        """Cancel the probe sweep (idempotent)."""
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def on_alert(self, listener: Callable[[SloAlert], None]) -> None:
        """Fire *listener* on every locally-evaluated burn-rate alert.

        Attaching a listener is what switches local evaluation on;
        fleet workers never attach one (the fleet monitor evaluates
        centrally over the merged stream instead).
        """
        self._listeners.append(listener)

    # -- the sweep -----------------------------------------------------------

    def _path_key(self, intent) -> str:
        """Fleet-portable ``"<type>:<i>-><type>:<j>"`` key for a
        session's endpoints (the same vocabulary intent remapping and
        headroom summaries use, so keys compare across hosts).
        Memoized per endpoint pair — one formatted key per sample is
        probe-sweep hot."""
        pair = (intent.src, intent.dst)
        key = self._path_keys.get(pair)
        if key is None:
            keys = self._keys
            src = keys.get(intent.src, intent.src)
            dst = (keys.get(intent.dst, intent.dst)
                   if intent.dst is not None else "*")
            self._path_keys[pair] = key = f"{src}->{dst}"
        return key

    def _tick(self) -> None:
        config = self.config
        network = self.network
        now = network.engine.now
        tick = self._tick_index
        self._tick_index = tick + 1
        stride = config.sample_stride
        model = config.model
        topology = network.topology
        listeners = self._listeners
        verdicts: Dict[str, List[int]] = {}
        placements = self.manager.placements()
        if stride > 1:
            sampled = [p for i, p in enumerate(placements)
                       if not (i + tick) % stride]
        else:
            sampled = placements
        if sampled:
            # One vectorized utilization query per sweep, restricted to
            # the links the sampled paths actually cross: the per-link
            # query is an O(flows) sweep (O(placements * flows) per
            # tick), and the full-fabric snapshot pays O(links) even
            # when the sweep touches two of them.
            links: set = set()
            for placement in sampled:
                links.update(placement.candidate.paths[0].links)
            utilization_of = network.link_utilizations(
                only=links).__getitem__
        for placement in sampled:
            intent = placement.intent
            value = model.path_latency(
                topology, placement.candidate.paths[0], utilization_of,
                config.message_size)
            path_key = self._path_key(intent)
            key = (intent.tenant_id, path_key)
            hist = self._histograms.get(key)
            if hist is None:
                self._histograms[key] = hist = LatencyHistogram()
            hist.record(value)
            self._delta.append((now, intent.tenant_id, path_key, value))
            if listeners:
                for objective in config.objectives:
                    if objective.matches(intent.tenant_id, path_key):
                        tally = verdicts.setdefault(objective.name, [0, 0])
                        tally[objective.is_bad(value)] += 1
        if not listeners:
            return
        for name, tracker in self._trackers.items():
            good, bad = verdicts.get(name, (0, 0))
            tracker.record(now, good, bad)
            for window, burn_long, burn_short in tracker.check(now):
                alert = SloAlert(
                    time=now, objective=name, window=window.name,
                    host_id="", burn_long=burn_long,
                    burn_short=burn_short, threshold=window.threshold)
                for listener in listeners:
                    listener(alert)

    # -- consumption ---------------------------------------------------------

    def take_delta(self) -> List[Tuple[float, str, str, float]]:
        """Drain the raw ``(time, tenant, path, value)`` samples
        accumulated since the last take."""
        if not self._delta:
            return []
        delta = self._delta
        self._delta = []
        return delta

    def histograms(self) -> Dict[Tuple[str, str], LatencyHistogram]:
        """The per-(tenant, path) histograms (live references)."""
        return self._histograms

    def signature(self) -> tuple:
        """Hashable histogram state — an equivalence-test key."""
        return tuple(sorted(
            (key, hist.signature())
            for key, hist in self._histograms.items()))
