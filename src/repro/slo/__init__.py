"""``repro.slo`` — continuous latency observability with closed-loop SLOs.

The latency half of the paper's §3.1 monitoring questions: sampled
in-situ probes on session hot paths (:class:`LatencyProbe`, riding each
host's own engine), streaming mergeable per-tenant/per-path log-scale
histograms (:class:`LatencyHistogram` — worker shards ship deltas, the
fleet folds them bit-identically), declarative latency objectives with
Google-SRE-style multi-window multi-burn-rate alerting
(:class:`SloObjective`, :class:`BurnRateTracker`), and a fleet-side
evaluation point (:class:`FleetSloMonitor`) whose alerts close the loop:
host-local sinks re-place or degrade through the
:class:`~repro.resilience.controller.RecoveryController`, fleet sinks
live-migrate the offending host's sessions through
:meth:`~repro.fleet.migration.MigrationPlanner.relieve_latency`.

Arm it with ``Host(slo=...)`` or ``Fleet(slo=...)``; see
:func:`run_latency_regression` for the end-to-end story and DESIGN.md
§16 for the burn-rate math and determinism contract.
"""

from .histogram import (
    BUCKET_COUNT,
    BUCKET_FLOOR,
    BUCKET_GROWTH,
    LatencyHistogram,
    bucket_index,
    bucket_upper,
    merge_histograms,
)
from .monitor import FleetSloMonitor, SloSample
from .objective import (
    DEFAULT_BUDGET_PERIOD,
    BurnRateTracker,
    BurnRateWindow,
    SloAlert,
    SloObjective,
)
from .probe import LatencyProbe, SloConfig, normalize_slo
from .scenario import (
    LatencyRegressionConfig,
    LatencyRegressionReport,
    run_latency_regression,
)

__all__ = [
    "BUCKET_COUNT",
    "BUCKET_FLOOR",
    "BUCKET_GROWTH",
    "bucket_index",
    "bucket_upper",
    "merge_histograms",
    "LatencyHistogram",
    "DEFAULT_BUDGET_PERIOD",
    "BurnRateWindow",
    "BurnRateTracker",
    "SloAlert",
    "SloObjective",
    "SloConfig",
    "LatencyProbe",
    "normalize_slo",
    "FleetSloMonitor",
    "SloSample",
    "LatencyRegressionConfig",
    "LatencyRegressionReport",
    "run_latency_regression",
]
