"""Declarative SLO objectives and multi-window burn-rate tracking.

An :class:`SloObjective` says "the p99 latency of these sessions stays
under this bound"; a :class:`BurnRateTracker` watches how fast a stream
of good/bad probe samples spends the objective's error budget.  The
alerting policy is the Google SRE workbook's multi-window multi-burn-rate
recipe, scaled into simulated time:

* the **fast** page fires when 2% of a budget period's error budget burns
  in a 1/720-period window (the "5% of budget in 1 hour of a 30-day
  period" rule: burn rate > 36);
* the **slow** page fires when budget burns at rate > 12 over a
  1/120-period window (the "10% in 6 hours" rule).

Each long window is paired with a short window 1/12 its length — both
must exceed the threshold, so alerts reset quickly once the regression
clears — and re-fires are suppressed for one long-window per window kind.
A real 30-day budget period makes no sense inside a sub-second
simulation, so ``period`` is simply a config knob: the default 14.4 s
"month" gives a 20 ms fast window, matched to probe cadences of a few
milliseconds.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Default error-budget period in simulated seconds (the "30 days").
DEFAULT_BUDGET_PERIOD = 14.4

#: Long-window divisors and burn thresholds from the SRE workbook's
#: recommended pairs (5%-of-budget/1h and 10%-of-budget/6h on a 30-day
#: period), expressed as fractions of the budget period.
_FAST_DIVISOR, _FAST_THRESHOLD = 720.0, 36.0
_SLOW_DIVISOR, _SLOW_THRESHOLD = 120.0, 12.0
#: Short confirmation window = long window / 12 (1h -> 5min).
_SHORT_RATIO = 12.0


@dataclass(frozen=True)
class BurnRateWindow:
    """One (long, short) window pair with its burn-rate threshold.

    Attributes:
        name: ``"fast"`` or ``"slow"`` (alert routing key).
        long: Long-window length in simulated seconds.
        short: Confirmation-window length (``long / 12``).
        threshold: Burn rate both windows must exceed to fire.
    """

    name: str
    long: float
    short: float
    threshold: float


@dataclass(frozen=True)
class SloObjective:
    """One latency objective: a percentile bound over a session scope.

    Attributes:
        name: Unique objective name (alert and report key).
        bound: Latency bound in seconds.
        percentile: Target percentile in (0, 100); p99 by default, so
            the error budget is 1% of samples.
        tenant: Restrict to one tenant id (``None`` = every tenant).
        path: Restrict to one canonical path key, e.g. ``"nic:0->dimm:0"``
            (``None`` = every path).
        period: Error-budget period in simulated seconds — the "30
            days" the burn-rate thresholds are quoted against.
    """

    name: str
    bound: float
    percentile: float = 99.0
    tenant: Optional[str] = None
    path: Optional[str] = None
    period: float = DEFAULT_BUDGET_PERIOD

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an SloObjective needs a name")
        if self.bound <= 0:
            raise ValueError(f"bound must be > 0, got {self.bound}")
        if not 0 < self.percentile < 100:
            raise ValueError(
                f"percentile must be in (0, 100), got {self.percentile}")
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")

    @property
    def error_budget(self) -> float:
        """Allowed bad-sample fraction (``1 - percentile/100``)."""
        return 1.0 - self.percentile / 100.0

    def windows(self) -> Tuple[BurnRateWindow, BurnRateWindow]:
        """The (fast, slow) burn-rate window pairs for this objective."""
        fast_long = self.period / _FAST_DIVISOR
        slow_long = self.period / _SLOW_DIVISOR
        return (
            BurnRateWindow("fast", fast_long, fast_long / _SHORT_RATIO,
                           _FAST_THRESHOLD),
            BurnRateWindow("slow", slow_long, slow_long / _SHORT_RATIO,
                           _SLOW_THRESHOLD),
        )

    def matches(self, tenant: str, path: str) -> bool:
        """Whether a (tenant, path) sample stream is in this
        objective's scope."""
        if self.tenant is not None and tenant != self.tenant:
            return False
        if self.path is not None and path != self.path:
            return False
        return True

    def is_bad(self, value: float) -> bool:
        """Whether one latency sample burns error budget."""
        return value > self.bound


@dataclass(frozen=True)
class SloAlert:
    """One burn-rate alert, the audit record sinks act on.

    Attributes:
        time: Fleet/host time the alert fired (evaluation boundary).
        objective: The :attr:`SloObjective.name` that is burning.
        window: ``"fast"`` or ``"slow"``.
        host_id: Offending host (``""`` for a host-local probe alert,
            which knows no fleet identity).
        burn_long: Burn rate over the long window.
        burn_short: Burn rate over the short window.
        threshold: The threshold both rates exceeded.
    """

    time: float
    objective: str
    window: str
    host_id: str
    burn_long: float
    burn_short: float
    threshold: float

    def describe(self) -> str:
        """One operator-facing line."""
        where = f" on {self.host_id}" if self.host_id else ""
        return (f"[{self.time:.6f}s] {self.objective}: {self.window}-window "
                f"burn {self.burn_long:.1f}x/{self.burn_short:.1f}x "
                f"(threshold {self.threshold:g}x){where}")


@dataclass
class BurnRateTracker:
    """Streaming burn-rate evaluation for one objective over one scope.

    Fed batches of ``(time, good, bad)`` counts in nondecreasing time
    order (one batch per probe tick or evaluation boundary);
    :meth:`check` answers "which windows fire right now".  Entries
    older than the longest window are pruned, so live state is O(long
    window / probe period).

    Entries live in parallel time / cumulative-count arrays, so a
    burn-rate query is a bisect plus two subtractions — O(log n), not a
    scan.  The fleet monitor queries every (objective, host) tracker at
    every evaluation boundary, which made the naive scan the
    subsystem's hot path (and what the <=2% enabled-overhead contract
    in ``benchmarks/bench_slo_overhead.py`` holds the line on).
    """

    objective: SloObjective

    def __post_init__(self) -> None:
        windows = self.objective.windows()
        self._windows = windows
        self._horizon = max(w.long for w in windows)
        self._times: List[float] = []
        self._cum_good: List[int] = []
        self._cum_bad: List[int] = []
        self._start = 0  # first live entry (pruned lazily, see below)
        self._last_fired: Dict[str, float] = {}

    def record(self, t: float, good: int, bad: int) -> None:
        """Fold one batch of sample verdicts taken at time *t*."""
        if good < 0 or bad < 0:
            raise ValueError(f"negative sample counts ({good}, {bad})")
        if good or bad:
            cum_good, cum_bad = self._cum_good, self._cum_bad
            self._times.append(t)
            cum_good.append((cum_good[-1] if cum_good else 0) + good)
            cum_bad.append((cum_bad[-1] if cum_bad else 0) + bad)

    def _prune(self, now: float) -> None:
        # Cumulative sums are absolute, so pruning just advances the
        # live-window start; the dead prefix is physically dropped once
        # it dominates the arrays.
        start = bisect_left(self._times, now - self._horizon, self._start)
        self._start = start
        if start > 1024 and start * 2 > len(self._times):
            del self._times[:start]
            del self._cum_good[:start]
            del self._cum_bad[:start]
            self._start = 0

    def burn_rate(self, now: float, window: float) -> Optional[float]:
        """Budget burn rate over ``[now - window, now]``.

        ``None`` when the window holds no samples (an empty window is
        evidence of nothing — it must not fire or clear an alert).
        """
        times = self._times
        first = bisect_left(times, now - window, self._start)
        if first >= len(times):
            return None
        base_good = self._cum_good[first - 1] if first else 0
        base_bad = self._cum_bad[first - 1] if first else 0
        good = self._cum_good[-1] - base_good
        bad = self._cum_bad[-1] - base_bad
        total = good + bad
        if total == 0:
            return None
        return (bad / total) / self.objective.error_budget

    def check(self, now: float) -> List[Tuple[BurnRateWindow, float, float]]:
        """Windows firing at *now*: ``(window, burn_long, burn_short)``.

        A window fires when *both* its long and short burn rates exceed
        the threshold (the multi-window conjunction that makes alerts
        reset fast), at most once per long-window length (cooldown).
        """
        self._prune(now)
        fired = []
        for window in self._windows:
            last = self._last_fired.get(window.name)
            if last is not None and now - last < window.long:
                continue
            burn_long = self.burn_rate(now, window.long)
            if burn_long is None or burn_long <= window.threshold:
                continue
            burn_short = self.burn_rate(now, window.short)
            if burn_short is None or burn_short <= window.threshold:
                continue
            self._last_fired[window.name] = now
            fired.append((window, burn_long, burn_short))
        return fired
