"""Mergeable fixed-bucket log-scale latency histograms.

The streaming substrate of the SLO subsystem ("Waiting at the front
door" shows per-flow latency histograms are feasible at line rate; we
keep their shape): a fixed geometric bucket ladder shared by every
histogram in the fleet, so worker-side histograms merge into the fleet
rollup by integer addition — no rebinning, no data-dependent bucket
boundaries, and therefore bit-identical results whether samples were
folded in one process or sharded across many.

The ladder spans 1 ns to ~18 s in 64 doubling buckets: finer than any
latency contrast the :mod:`repro.sim.latency` model produces, coarse
enough that a histogram is 64 ints.  Saturated-path probes return
``inf``; those land in the top bucket (and count against any bound).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

#: Lower edge of bucket 0, in seconds (1 ns).
BUCKET_FLOOR = 1e-9
#: Geometric growth factor between bucket edges.
BUCKET_GROWTH = 2.0
#: Number of buckets (top bucket also absorbs overflow and ``inf``).
BUCKET_COUNT = 64

_LOG_GROWTH = math.log(BUCKET_GROWTH)


def bucket_index(value: float) -> int:
    """The bucket a latency sample falls in.

    Sub-floor (and non-positive) values clamp to bucket 0; overflow and
    ``inf`` clamp to the top bucket.  Pure function of the value — the
    fleet-wide bucketing contract every merge relies on.
    """
    if not value > BUCKET_FLOOR:
        return 0
    if math.isinf(value):
        return BUCKET_COUNT - 1
    index = int(math.log(value / BUCKET_FLOOR) / _LOG_GROWTH)
    return min(max(index, 0), BUCKET_COUNT - 1)


def bucket_upper(index: int) -> float:
    """Upper edge (seconds) of bucket *index*."""
    return BUCKET_FLOOR * BUCKET_GROWTH ** (index + 1)


class LatencyHistogram:
    """One stream's latency distribution in fixed log-scale buckets.

    Mergeable by construction: every instance uses the module-level
    ladder, so :meth:`merge` is element-wise integer addition and the
    result is independent of how samples were partitioned across
    processes — the property the parallel backend's histogram-delta
    protocol rests on (asserted by hypothesis in ``tests/test_slo.py``).
    """

    __slots__ = ("counts", "total")

    def __init__(self) -> None:
        self.counts: List[int] = [0] * BUCKET_COUNT
        self.total = 0

    def record(self, value: float, n: int = 1) -> None:
        """Fold *n* observations of *value* (seconds) into the ladder."""
        self.counts[bucket_index(value)] += n
        self.total += n

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold *other*'s counts into this histogram (element-wise)."""
        counts = self.counts
        for i, c in enumerate(other.counts):
            counts[i] += c
        self.total += other.total

    def percentile(self, p: float) -> float:
        """Upper bucket edge at percentile *p* (conservative estimate).

        Returns the upper edge of the first bucket whose cumulative
        count reaches ``p%`` of the total — an over-estimate by at most
        one bucket width, which is the right bias for checking an SLO
        bound.  Raises ``ValueError`` on an empty histogram.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.total == 0:
            raise ValueError("percentile of an empty histogram")
        target = p / 100.0 * self.total
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += c
            if cumulative >= target and cumulative > 0:
                return bucket_upper(i)
        return bucket_upper(BUCKET_COUNT - 1)

    def count_above(self, bound: float) -> int:
        """Observations in buckets lying entirely above *bound*.

        Conservative in the other direction from :meth:`percentile`:
        the bucket containing *bound* is not counted, so a sample is
        only called bad when its whole bucket is.
        """
        first = bucket_index(bound) + 1
        return sum(self.counts[first:])

    def signature(self) -> Tuple[Tuple[int, int], ...]:
        """Sparse ``(bucket, count)`` tuple — the equivalence key two
        same-seed runs must agree on bit-for-bit."""
        return tuple((i, c) for i, c in enumerate(self.counts) if c)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return self.counts == other.counts

    def __len__(self) -> int:
        return self.total

    def __repr__(self) -> str:
        return (f"LatencyHistogram(total={self.total}, "
                f"nonzero={sum(1 for c in self.counts if c)})")


def merge_histograms(
    parts: Iterable[Dict[Tuple[str, str], LatencyHistogram]],
) -> Dict[Tuple[str, str], LatencyHistogram]:
    """Merge per-(tenant, path) histogram maps from many sources."""
    merged: Dict[Tuple[str, str], LatencyHistogram] = {}
    for part in parts:
        for key, hist in part.items():
            target = merged.get(key)
            if target is None:
                merged[key] = target = LatencyHistogram()
            target.merge(hist)
    return merged
