"""The seeded latency-regression scenario: alert to migration, closed.

The acceptance demo for the SLO subsystem, and the CLI's ``fleet slo``
workload: a churn-driven fleet with latency probes armed suffers a
silent capacity degradation on one host (its links drop to a fraction
of nominal capacity — the serialization term of every probe on that
host inflates past the objective bound, *without* the fault model
marking the host unhealthy).  The fast-window burn-rate alert names the
offender, the fleet's alert sink live-migrates its sessions to hosts
with headroom, and SLO attainment recovers — the paper's §3.1 "observe
it, then manage it" loop at fleet scale.

Deterministic by construction: the churn stream, degrade instants, and
evaluation boundaries are identical for the serial and parallel
backends and for both fleet-clock disciplines, so
:meth:`LatencyRegressionReport.signature` is bit-identical across all
of them for a given seed (pinned across 20 seeds in
``tests/test_slo.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import SloError
from ..units import us
from .monitor import SloSample
from .objective import SloAlert, SloObjective
from .probe import SloConfig


@dataclass(frozen=True)
class LatencyRegressionConfig:
    """Knobs for one seeded regression run.

    Attributes:
        seed: Master seed (drives the churn arrival stream).
        hosts: Fleet size.
        horizon: Simulated seconds.
        arrival_rate / mean_holding / tenants: Churn-stream shape (see
            :class:`~repro.fleet.workload.FleetChurnConfig`).
        bound / percentile / budget_period: The objective under test.
        probe_period / sample_stride / message_size: Probe knobs; the
            default 256 KiB probe makes a 20x capacity degradation a
            ~20x serialization inflation, far past the bound, while
            healthy paths stay well under it.
        degrade_at: When the target host's links silently degrade.
        degrade_factor: Remaining capacity fraction (0.05 = 20x loss).
        restore_at: Optional repair instant (``None`` = never).
        degrade_host: Target host id (default: the first host).
        max_moves: Migration budget per alert handed to
            :meth:`~repro.fleet.migration.MigrationPlanner.relieve_latency`.
    """

    seed: int = 0
    hosts: int = 4
    horizon: float = 0.12
    arrival_rate: float = 2000.0
    mean_holding: float = 0.05
    tenants: int = 8
    bound: float = us(200)
    percentile: float = 99.0
    budget_period: float = 14.4
    probe_period: float = 0.002
    sample_stride: int = 1
    message_size: float = float(1 << 18)
    degrade_at: float = 0.04
    degrade_factor: float = 0.05
    restore_at: Optional[float] = None
    degrade_host: Optional[str] = None
    max_moves: int = 4

    def __post_init__(self) -> None:
        if not 0 <= self.degrade_at <= self.horizon:
            raise SloError(
                f"degrade_at={self.degrade_at} outside the horizon "
                f"[0, {self.horizon}]")
        if self.restore_at is not None and self.restore_at < self.degrade_at:
            raise SloError("restore_at must not precede degrade_at")


@dataclass
class LatencyRegressionReport:
    """Outcome of one regression run.

    Attributes:
        config: The driving config.
        target_host: The host that was degraded.
        admitted / rejected / released: Churn counters.
        alerts: Every burn-rate alert, in firing order.
        slo_migrations: ``(time, intent_id, src, dst, ok)`` for every
            latency-driven migration attempt, in planner order.
        first_alert_time: When the first fast-window alert fired.
        first_migration_time: When the first successful latency-driven
            migration committed (the "mitigation latency" endpoint).
        attainment_before / during / after: Good-sample fraction over
            the healthy prefix, the regression window, and the
            post-mitigation tail (``None`` when a segment is empty).
        samples: Total probe samples folded fleet-wide.
        ledger_signatures: Per-host reservation signatures at the end.
        histogram_signature: The monitor's folded histogram state.
    """

    config: LatencyRegressionConfig
    target_host: str
    admitted: int = 0
    rejected: int = 0
    released: int = 0
    alerts: Tuple[SloAlert, ...] = ()
    slo_migrations: Tuple[Tuple[float, str, str, str, bool], ...] = ()
    first_alert_time: Optional[float] = None
    first_migration_time: Optional[float] = None
    attainment_before: Optional[float] = None
    attainment_during: Optional[float] = None
    attainment_after: Optional[float] = None
    samples: int = 0
    ledger_signatures: List[Tuple[str, tuple]] = field(default_factory=list)
    histogram_signature: tuple = ()

    def signature(self) -> tuple:
        """The bit-identical cross-backend equivalence key."""
        return (
            self.alerts,
            self.slo_migrations,
            tuple(self.ledger_signatures),
            self.histogram_signature,
            (self.admitted, self.rejected, self.released, self.samples),
        )

    def describe(self) -> str:
        """Operator-facing run summary."""

        def pct(x: Optional[float]) -> str:
            return "n/a" if x is None else f"{x:.2%}"

        committed = sum(1 for m in self.slo_migrations if m[4])
        lines = [
            f"latency regression on {self.target_host} "
            f"(seed={self.config.seed}, degrade x"
            f"{self.config.degrade_factor:g} at "
            f"{self.config.degrade_at:g}s): "
            f"{self.admitted} admitted, {self.rejected} rejected, "
            f"{self.samples} probe samples",
            f"  alerts: {len(self.alerts)} "
            f"(first at {self.first_alert_time:.6f}s)"
            if self.alerts else "  alerts: none",
            f"  slo migrations: {committed} committed / "
            f"{len(self.slo_migrations)} attempted"
            + (f" (first at {self.first_migration_time:.6f}s)"
               if self.first_migration_time is not None else ""),
            f"  attainment: before={pct(self.attainment_before)}  "
            f"during={pct(self.attainment_during)}  "
            f"after={pct(self.attainment_after)}",
        ]
        if self.first_alert_time is not None:
            detect = self.first_alert_time - self.config.degrade_at
            lines.append(f"  detection latency: {detect * 1e3:.1f}ms")
        if (self.first_alert_time is not None
                and self.first_migration_time is not None):
            react = self.first_migration_time - self.first_alert_time
            lines.append(f"  alert-to-migration: {react * 1e3:.1f}ms")
        return "\n".join(lines)


def run_latency_regression(
    config: Optional[LatencyRegressionConfig] = None,
    *,
    parallel: Optional[int] = None,
    clock: str = "event",
) -> LatencyRegressionReport:
    """Run one seeded regression scenario and report the closed loop."""
    # Imported here: repro.slo is imported by repro.fleet.cluster at
    # module level, so the scenario (a fleet *client*) must not import
    # the fleet at this module's own import time.
    from ..fleet.cluster import Fleet
    from ..fleet.workload import FleetChurnConfig, generate_events

    config = config or LatencyRegressionConfig()
    objective = SloObjective(
        "fleet-p99", config.bound, percentile=config.percentile,
        period=config.budget_period)
    slo = SloConfig(
        objectives=(objective,), probe_period=config.probe_period,
        sample_stride=config.sample_stride,
        message_size=config.message_size, keep_samples=True)
    fleet = Fleet(
        "cascade_lake_2s", hosts=config.hosts, policy="best-fit",
        clock=clock, parallel=parallel, slo=slo,
        slo_max_moves=config.max_moves)
    try:
        target = config.degrade_host or fleet.host_ids()[0]
        fleet.require_host(target)
        report = LatencyRegressionReport(config=config, target_host=target)

        controls: List[Tuple[float, str]] = [(config.degrade_at, "degrade")]
        if config.restore_at is not None:
            controls.append((min(config.restore_at, config.horizon),
                             "restore"))

        def apply_controls(up_to: float) -> None:
            while controls and controls[0][0] <= up_to:
                at, kind = controls.pop(0)
                fleet.advance_to(at)
                if kind == "degrade":
                    fleet.degrade_host_links(target, config.degrade_factor)
                else:
                    fleet.restore_host_links(target)

        churn = FleetChurnConfig(
            seed=config.seed, tenants=config.tenants,
            horizon=config.horizon, arrival_rate=config.arrival_rate,
            mean_holding=config.mean_holding)
        for time, _seq, kind, payload in generate_events(churn, fleet):
            apply_controls(time)
            fleet.advance_to(time)
            if kind == "arrive":
                if fleet.try_submit(payload) is not None:
                    report.admitted += 1
                else:
                    report.rejected += 1
            elif fleet.scheduler.has_intent(payload):
                fleet.release(payload)
                report.released += 1
        apply_controls(config.horizon)
        fleet.advance_to(config.horizon)

        monitor = fleet.slo
        assert monitor is not None
        report.alerts = tuple(monitor.alerts)
        report.slo_migrations = tuple(
            (r.time, r.intent_id, r.src, r.dst, r.ok)
            for r in fleet.planner.records if r.kind == "slo")
        report.first_alert_time = (
            report.alerts[0].time if report.alerts else None)
        committed = [m for m in report.slo_migrations if m[4]]
        report.first_migration_time = committed[0][0] if committed else None
        report.samples = len(monitor.samples)
        report.attainment_before, report.attainment_during, \
            report.attainment_after = _attainment_segments(
                monitor.samples, objective, config.degrade_at,
                report.first_migration_time)
        report.ledger_signatures = sorted(
            fleet.ledger_signatures().items())
        report.histogram_signature = monitor.signature()[1]
        return report
    finally:
        fleet.shutdown()


def _attainment_segments(
    samples: List[SloSample], objective: SloObjective,
    degrade_at: float, recovered_at: Optional[float],
) -> Tuple[Optional[float], Optional[float], Optional[float]]:
    """Good-sample fractions before / during / after the regression.

    "During" ends at the first committed latency-driven migration
    (mitigation start); without one, the regression never ends.
    """
    segments = [[0, 0], [0, 0], [0, 0]]
    for t, _host, _tenant, _path, value in samples:
        if t < degrade_at:
            index = 0
        elif recovered_at is None or t <= recovered_at:
            index = 1
        else:
            index = 2
        segments[index][objective.is_bad(value)] += 1
    out = []
    for good, bad in segments:
        total = good + bad
        out.append(good / total if total else None)
    return out[0], out[1], out[2]
