"""Fleet-side SLO evaluation over the merged probe-sample stream.

:class:`FleetSloMonitor` is the parent-side fold point: per-host probes
(running serially in-process or inside parallel workers) emit raw
``(time, tenant, path, value)`` samples; ``Fleet.advance_to`` drains
them — tagged with their host — into :meth:`ingest`, and
:meth:`evaluate` folds them into fleet-wide per-(tenant, path)
histograms and per-(objective, host) burn-rate trackers.

Determinism contract: samples are folded in sorted
``(time, host_id, tenant, path, value)`` order regardless of arrival
order, so histogram state, anomaly streams, and the alert log are
bit-identical between the serial and parallel backends (and across
fleet-clock disciplines) for a seeded run — the property
``tests/test_slo.py`` pins across 20 seeds.

Burn rates are tracked *per host* within each objective's scope: the
alert that fires names the host burning budget, which is exactly the
attribution the closed loop needs (the fleet's default sink hands the
offender to :meth:`MigrationPlanner.relieve_latency`).  Samples also
feed a :class:`~repro.monitor.anomaly.LatencyInflationDetector` per
objective, so latency regressions surface in the same anomaly
vocabulary as the bandwidth-side monitors.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..monitor.anomaly import Anomaly, LatencyInflationDetector
from .histogram import LatencyHistogram
from .objective import BurnRateTracker, SloAlert, SloObjective

#: One tagged probe sample: (time, host_id, tenant, path, value).
SloSample = Tuple[float, str, str, str, float]


class FleetSloMonitor:
    """Streaming fleet-wide SLO state: histograms, burn rates, alerts.

    Args:
        objectives: The :class:`SloObjective` set to evaluate.
        keep_samples: Retain every folded sample in :attr:`samples`
            (scenario analysis); off by default to bound memory.
    """

    def __init__(self, objectives: Iterable[SloObjective],
                 keep_samples: bool = False) -> None:
        self.objectives: Tuple[SloObjective, ...] = tuple(objectives)
        self.keep_samples = keep_samples
        #: Every alert ever fired, in order — the audit log and the
        #: cross-mode equivalence key.
        self.alerts: List[SloAlert] = []
        #: Latency anomalies surfaced into the monitor vocabulary.
        self.anomalies: List[Anomaly] = []
        #: Raw folded samples (only when ``keep_samples``).
        self.samples: List[SloSample] = []
        self._buffer: List[SloSample] = []
        self._histograms: Dict[Tuple[str, str], LatencyHistogram] = {}
        self._trackers: Dict[Tuple[str, str], BurnRateTracker] = {}
        self._totals: Dict[str, List[int]] = {
            o.name: [0, 0] for o in self.objectives}
        self._detectors = {
            o.name: LatencyInflationDetector(o.bound,
                                             metric_prefix="latency.")
            for o in self.objectives}
        self._metric_keys: Dict[Tuple[str, str], str] = {}
        self._listeners: List[Callable[[SloAlert], None]] = []

    def on_alert(self, listener: Callable[[SloAlert], None]) -> None:
        """Fire *listener* on every alert :meth:`evaluate` raises."""
        self._listeners.append(listener)

    # -- the fold ------------------------------------------------------------

    def ingest(self, samples: Iterable[SloSample]) -> None:
        """Buffer tagged probe samples for the next :meth:`evaluate`."""
        self._buffer.extend(samples)

    def evaluate(self, now: float) -> List[SloAlert]:
        """Fold buffered samples and fire due burn-rate alerts.

        Samples are sorted before folding so the result is independent
        of arrival order (worker interleaving); alerts fire in sorted
        (objective, host) order at time *now*.  Returns the new alerts.

        Only trackers that folded new samples this boundary are
        checked: a burn verdict cannot newly fire without fresh
        samples (the short confirmation window is narrower than any
        probe cadence, so it drains to ``None`` — evidence of nothing
        — between sample arrivals), and skipping idle trackers keeps
        per-boundary cost proportional to probe traffic, not fleet
        size.  The touched set derives from the sorted sample stream,
        so the alert log stays bit-identical across backends.
        """
        buffered = self._buffer
        self._buffer = []
        buffered.sort()
        touched = set()
        metric_keys = self._metric_keys
        for sample in buffered:
            t, host_id, tenant, path, value = sample
            key = (tenant, path)
            hist = self._histograms.get(key)
            if hist is None:
                self._histograms[key] = hist = LatencyHistogram()
            hist.record(value)
            metric = metric_keys.get(key)
            if metric is None:
                metric_keys[key] = metric = f"latency.{tenant}.{path}"
            if self.keep_samples:
                self.samples.append(sample)
            for objective in self.objectives:
                if not objective.matches(tenant, path):
                    continue
                tkey = (objective.name, host_id)
                tracker = self._trackers.get(tkey)
                if tracker is None:
                    self._trackers[tkey] = tracker = \
                        BurnRateTracker(objective)
                bad = objective.is_bad(value)
                tracker.record(t, 0 if bad else 1, 1 if bad else 0)
                touched.add(tkey)
                self._totals[objective.name][1 if bad else 0] += 1
                anomaly = self._detectors[objective.name].observe(
                    metric, t, value)
                if anomaly is not None:
                    self.anomalies.append(anomaly)
        fired: List[SloAlert] = []
        for name, host_id in sorted(touched):
            tracker = self._trackers[(name, host_id)]
            for window, burn_long, burn_short in tracker.check(now):
                fired.append(SloAlert(
                    time=now, objective=name, window=window.name,
                    host_id=host_id, burn_long=burn_long,
                    burn_short=burn_short, threshold=window.threshold))
        for alert in fired:
            self.alerts.append(alert)
            for listener in self._listeners:
                listener(alert)
        return fired

    # -- reads ---------------------------------------------------------------

    def histogram(self, tenant: Optional[str] = None,
                  path: Optional[str] = None) -> LatencyHistogram:
        """Merged histogram over every (tenant, path) stream in scope."""
        merged = LatencyHistogram()
        for (t, p), hist in self._histograms.items():
            if tenant is not None and t != tenant:
                continue
            if path is not None and p != path:
                continue
            merged.merge(hist)
        return merged

    def attainment(self, objective: SloObjective) -> Optional[float]:
        """Lifetime good-sample fraction in *objective*'s scope
        (``None`` before any sample)."""
        good, bad = self._totals[objective.name]
        total = good + bad
        return good / total if total else None

    def host_clear(self, host_id: str, now: float) -> bool:
        """Whether *host_id* shows positive evidence of health at *now*.

        True when every objective tracking the host has a fast-window
        burn rate that *exists* and sits at or below threshold.  An
        empty window (``None`` burn — e.g. a fully evacuated host emits
        no samples) is **not** clear: un-quarantining requires healthy
        samples, so silence after an evacuation cannot flap a
        still-degraded host back into service; overflow placements that
        land on it provide the probes that eventually clear it.
        """
        seen = False
        for (_name, tracked), tracker in self._trackers.items():
            if tracked != host_id:
                continue
            seen = True
            fast = tracker.objective.windows()[0]
            burn = tracker.burn_rate(now, fast.long)
            if burn is None or burn > fast.threshold:
                return False
        return seen

    def achieved(self, objective: SloObjective) -> Optional[float]:
        """The percentile the objective targets, as currently achieved
        over its scope (``None`` before any sample)."""
        merged = self.histogram(objective.tenant, objective.path)
        if merged.total == 0:
            return None
        return merged.percentile(objective.percentile)

    def signature(self) -> tuple:
        """Hashable (alerts, histograms) state — the bit-identical
        serial/parallel equivalence key."""
        return (
            tuple(self.alerts),
            tuple(sorted((key, hist.signature())
                         for key, hist in self._histograms.items())),
        )

    def describe(self) -> str:
        """Operator-facing summary: one line per objective, then the
        most recent alerts."""
        lines = [f"slo: {len(self.objectives)} objectives, "
                 f"{sum(h.total for h in self._histograms.values())} "
                 f"samples over {len(self._histograms)} streams, "
                 f"{len(self.alerts)} alerts, "
                 f"{len(self.anomalies)} anomalies"]
        for objective in self.objectives:
            attainment = self.attainment(objective)
            achieved = self.achieved(objective)
            status = ("no samples" if attainment is None else
                      f"attainment={attainment:.2%}  "
                      f"p{objective.percentile:g}<="
                      f"{achieved * 1e6:.0f}us")
            lines.append(
                f"  {objective.name}: bound "
                f"{objective.bound * 1e6:.0f}us @ "
                f"p{objective.percentile:g}  {status}")
        for alert in self.alerts[-5:]:
            lines.append(f"  {alert.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"FleetSloMonitor(objectives={len(self.objectives)}, "
                f"streams={len(self._histograms)}, "
                f"alerts={len(self.alerts)})")
