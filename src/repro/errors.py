"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`HostNetError`, so callers
can catch one base class at the manager boundary.  Subclasses are grouped by
subsystem; each carries enough context in its message to be actionable
without a debugger.
"""

from __future__ import annotations


class HostNetError(Exception):
    """Base class for every error raised by the ``repro`` library."""


# --------------------------------------------------------------------------
# Topology errors.
# --------------------------------------------------------------------------


class TopologyError(HostNetError):
    """Base class for topology construction and query failures."""


class UnknownDeviceError(TopologyError):
    """A device id was referenced that does not exist in the topology."""

    def __init__(self, device_id: str) -> None:
        super().__init__(f"unknown device: {device_id!r}")
        self.device_id = device_id


class UnknownLinkError(TopologyError):
    """A link id was referenced that does not exist in the topology."""

    def __init__(self, link_id: str) -> None:
        super().__init__(f"unknown link: {link_id!r}")
        self.link_id = link_id


class DuplicateElementError(TopologyError):
    """A device or link id was registered twice."""


class InvalidTopologyError(TopologyError):
    """The topology failed structural validation (see ``topology.validate``)."""


class NoPathError(TopologyError):
    """No usable path exists between the requested endpoints."""

    def __init__(self, src: str, dst: str, detail: str = "") -> None:
        message = f"no path from {src!r} to {dst!r}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.src = src
        self.dst = dst


# --------------------------------------------------------------------------
# Simulation errors.
# --------------------------------------------------------------------------


class SimulationError(HostNetError):
    """Base class for discrete-event engine failures."""


class ClockError(SimulationError):
    """An event was scheduled in the past or the clock moved backwards."""


class FlowError(SimulationError):
    """Illegal flow lifecycle transition (e.g. completing a finished flow)."""


# --------------------------------------------------------------------------
# Telemetry / monitoring errors.
# --------------------------------------------------------------------------


class TelemetryError(HostNetError):
    """Base class for telemetry collection failures."""


class UnknownMetricError(TelemetryError):
    """A metric name was queried that was never registered."""

    def __init__(self, metric: str) -> None:
        super().__init__(f"unknown metric: {metric!r}")
        self.metric = metric


class MonitorError(HostNetError):
    """Base class for monitoring/diagnostic subsystem failures."""


# --------------------------------------------------------------------------
# Resource-management errors.
# --------------------------------------------------------------------------


class ResourceError(HostNetError):
    """Base class for resource-management failures."""


class AdmissionError(ResourceError):
    """An intent could not be admitted under the active resource model."""

    def __init__(self, intent_id: str, reason: str) -> None:
        super().__init__(f"intent {intent_id!r} rejected: {reason}")
        self.intent_id = intent_id
        self.reason = reason


class InterpretationError(ResourceError):
    """A performance target could not be compiled into link requirements."""


class ScheduleError(ResourceError):
    """The scheduler could not place the requested demands."""


class ArbiterError(ResourceError):
    """Runtime arbitration failed (e.g. enforcing an unknown allocation)."""


class UnknownTenantError(ResourceError):
    """A tenant id was referenced that was never registered."""

    def __init__(self, tenant_id: str) -> None:
        super().__init__(f"unknown tenant: {tenant_id!r}")
        self.tenant_id = tenant_id


class WorkloadError(HostNetError):
    """Base class for workload/application configuration failures."""


class SloError(HostNetError):
    """Base class for latency-SLO subsystem misconfiguration."""


# --------------------------------------------------------------------------
# Fleet (multi-host cluster) errors.
# --------------------------------------------------------------------------


class FleetError(HostNetError):
    """Base class for cluster-layer failures."""


class UnknownHostError(FleetError):
    """A host id was referenced that is not part of the fleet."""

    def __init__(self, host_id: str) -> None:
        super().__init__(f"unknown host: {host_id!r}")
        self.host_id = host_id


class MigrationError(FleetError):
    """A cross-host migration could not be completed.

    The migration machinery is all-or-nothing: when this is raised the
    intent is back on its source host exactly as it was.
    """

    def __init__(self, intent_id: str, reason: str) -> None:
        super().__init__(f"intent {intent_id!r} not migrated: {reason}")
        self.intent_id = intent_id
        self.reason = reason
