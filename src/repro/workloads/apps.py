"""Synthetic applications — the co-location scenarios of §1–§2.

Every motivating example in the paper is a concrete application here:

* :class:`RdmaLoopbackApp` — the RDMA loopback traffic that "can exhaust
  the PCIe bandwidth" (§2, citing BytePS [31]);
* :class:`MlTrainingApp` — the ML job with "substantial workload for
  CPU-GPU communication (e.g., loading training data)";
* :class:`KvStoreApp` — the remote key-value store whose traffic "may
  traverse the same PCIe root port and the memory bus and therefore suffer
  from high latency";
* :class:`NvmeScanApp` — storage scans saturating an SSD's PCIe link;
* :class:`GpuAllReduceApp` — inter-GPU collective traffic (DGX-style);
* :class:`MaliciousFloodApp` — the multi-tenant adversary that
  "maliciously exhausts intra-host network fabric resources".

Applications drive the fluid simulator: elephant transfers are flows; small
request latencies are computed analytically from the instantaneous fabric
state at arrival (so congestion created by one app is immediately visible
in another's tail latency — the paper's interference mechanism).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import NoPathError, WorkloadError
from ..sim.engine import Engine
from ..sim.flows import Flow
from ..sim.network import FabricNetwork
from ..stats import Summary, summarize
from ..topology.routing import Path, shortest_path
from ..units import Gbps, kib, mib, us
from .generators import ClosedLoopGenerator, OpenLoopGenerator


@dataclass
class AppStats:
    """Runtime statistics common to every application.

    Attributes:
        ops_completed: Finished operations (requests, batches, chunks...).
        bytes_moved: Total payload bytes transferred.
        latencies: Per-operation latency samples (seconds), where the app
            measures per-op latency.
        started_at / stopped_at: Simulated lifetime bounds.
    """

    ops_completed: int = 0
    bytes_moved: float = 0.0
    latencies: List[float] = field(default_factory=list)
    started_at: Optional[float] = None
    stopped_at: Optional[float] = None

    def latency_summary(self) -> Summary:
        """Percentile summary of recorded latencies (raises if none)."""
        return summarize(self.latencies)

    def throughput(self, now: float) -> float:
        """Average payload bytes/s over the app's lifetime so far."""
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else now
        elapsed = end - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.bytes_moved / elapsed


class Application:
    """Base class wiring an app to the fabric, engine, and a tenant."""

    def __init__(self, network: FabricNetwork, tenant_id: str,
                 name: str, seed: int = 0) -> None:
        self.network = network
        self.engine: Engine = network.engine
        self.tenant_id = tenant_id
        self.name = name
        self.rng = random.Random(seed)
        self.stats = AppStats()
        self._running = False
        self._path_cache: Dict[tuple, Path] = {}

    @property
    def running(self) -> bool:
        """Whether the application is currently generating load."""
        return self._running

    def start(self) -> None:
        """Begin generating load (idempotent)."""
        if self._running:
            return
        self._running = True
        if self.stats.started_at is None:
            self.stats.started_at = self.engine.now
        self._on_start()

    def stop(self) -> None:
        """Stop generating load; outstanding work drains naturally."""
        if not self._running:
            return
        self._running = False
        self.stats.stopped_at = self.engine.now
        self._on_stop()

    def _on_start(self) -> None:
        raise NotImplementedError

    def _on_stop(self) -> None:
        """Hook for subclasses; default does nothing extra."""

    def _path(self, src: str, dst: str) -> Path:
        """Shortest path from *src* to *dst*, cached per endpoint pair.

        Path enumeration is expensive relative to per-operation work, so
        apps reuse the path until a link on it goes down — then they
        recompute (rerouting if the fabric still offers a way, keeping the
        stale path if not, so the outage is observable as lost operations).
        """
        key = (src, dst)
        cached = self._path_cache.get(key)
        topology = self.network.topology
        if cached is not None and all(
            topology.link(link_id).up for link_id in cached.links
        ):
            return cached
        try:
            fresh = shortest_path(topology, src, dst)
        except NoPathError:
            if cached is not None:
                return cached
            raise
        self._path_cache[key] = fresh
        return fresh

    def _tags(self, **extra: str) -> Dict[str, str]:
        tags = {"app": self.name}
        tags.update(extra)
        return tags


class RdmaLoopbackApp(Application):
    """RDMA loopback: traffic leaves and re-enters the same NIC.

    Loopback payload crosses the NIC's PCIe link and the path to the peer
    (host memory, or a GPU for GPUDirect-style traffic) in *both*
    directions simultaneously, which is why a single loopback job can
    exhaust a x16 link (§2).  Modelled as ``streams`` persistent elastic
    flows per direction (real loopback jobs run many QPs, and each grabs
    its own max-min share) with a configurable aggregate offered rate.
    """

    def __init__(self, network: FabricNetwork, tenant_id: str,
                 nic: str, dimm: str, offered_rate: float = math.inf,
                 streams: int = 1,
                 name: str = "rdma-loopback", seed: int = 0) -> None:
        if streams < 1:
            raise WorkloadError("streams must be >= 1")
        super().__init__(network, tenant_id, name, seed)
        self.nic = nic
        self.dimm = dimm
        self.offered_rate = offered_rate
        self.streams = streams
        self._flows: List[Flow] = []

    def _on_start(self) -> None:
        outbound = self._path(self.dimm, self.nic)
        inbound = self._path(self.nic, self.dimm)
        per_stream = self.offered_rate / self.streams
        for direction, path in (("out", outbound), ("in", inbound)):
            for i in range(self.streams):
                flow = self.network.start_transfer(
                    self.tenant_id, path, size=None, demand=per_stream,
                    tags=self._tags(direction=direction, stream=str(i)),
                )
                self._flows.append(flow)

    def _on_stop(self) -> None:
        for flow in self._flows:
            if self.network.has_flow(flow.flow_id):
                self.network.cancel_flow(flow.flow_id)
        self._flows.clear()

    def achieved_rate(self) -> float:
        """Current aggregate loopback rate (bytes/s, both directions)."""
        return sum(
            f.current_rate for f in self._flows
            if self.network.has_flow(f.flow_id)
        )


class MlTrainingApp(Application):
    """ML training: closed-loop batch loading DIMM -> GPU.

    Each iteration moves one batch over PCIe; iteration time is recorded,
    so fabric congestion directly shows up as training slowdown.
    """

    def __init__(self, network: FabricNetwork, tenant_id: str,
                 dimm: str, gpu: str, batch_bytes: float = mib(256),
                 concurrency: int = 2, compute_time: float = 0.0,
                 name: str = "ml-training", seed: int = 0) -> None:
        if batch_bytes <= 0:
            raise WorkloadError("batch_bytes must be > 0")
        super().__init__(network, tenant_id, name, seed)
        self.dimm = dimm
        self.gpu = gpu
        self.batch_bytes = batch_bytes
        self._generator = ClosedLoopGenerator(
            self.engine, self._launch_batch, concurrency=concurrency,
            think_time=compute_time, rng=self.rng,
        )

    def _on_start(self) -> None:
        self._generator.start()

    def _on_stop(self) -> None:
        self._generator.stop()

    def _launch_batch(self) -> None:
        path = self._path(self.dimm, self.gpu)
        launched_at = self.engine.now

        def finished(flow: Flow) -> None:
            self.stats.ops_completed += 1
            self.stats.bytes_moved += self.batch_bytes
            self.stats.latencies.append(self.engine.now - launched_at)
            self._generator.operation_done()

        self.network.start_transfer(
            self.tenant_id, path, size=self.batch_bytes,
            on_complete=finished, tags=self._tags(kind="batch"),
        )

    def iterations_per_second(self) -> float:
        """Training iteration rate over the app lifetime."""
        if not self.stats.latencies:
            return 0.0
        return self.stats.ops_completed / max(
            (self.stats.stopped_at or self.engine.now)
            - (self.stats.started_at or 0.0), 1e-12,
        )


class KvStoreApp(Application):
    """Remote KV store served over RDMA: external -> NIC -> memory.

    Requests arrive open loop; each response's latency is the analytic
    round trip over the NIC-to-DIMM path *at arrival time* plus fixed
    service overheads, so congestion anywhere on that path inflates the
    recorded tail.  The aggregate request stream also offers real
    bandwidth onto the fabric via two persistent demand flows (request
    ingress and response egress).
    """

    def __init__(self, network: FabricNetwork, tenant_id: str,
                 nic: str, dimm: str, request_rate: float = 50_000.0,
                 request_bytes: float = 512.0, response_bytes: float = kib(4),
                 service_time: float = us(2), external: str = "external",
                 name: str = "kv-store", seed: int = 0) -> None:
        if request_rate <= 0:
            raise WorkloadError("request_rate must be > 0")
        super().__init__(network, tenant_id, name, seed)
        self.nic = nic
        self.dimm = dimm
        self.external = external
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.service_time = service_time
        self.request_rate = request_rate
        self._generator = OpenLoopGenerator(
            self.engine, self._serve_request, rate=request_rate, rng=self.rng,
        )
        self._demand_flows: List[Flow] = []

    def _on_start(self) -> None:
        # Persistent demand flows carrying the aggregate request/response
        # byte streams (ingress external->DIMM, egress DIMM->external).
        ingress = self._path(self.external, self.dimm)
        egress = self._path(self.dimm, self.external)
        in_rate = self.request_rate * self.request_bytes
        out_rate = self.request_rate * self.response_bytes
        self._demand_flows = [
            self.network.start_transfer(
                self.tenant_id, ingress, size=None, demand=in_rate,
                tags=self._tags(kind="ingress"),
            ),
            self.network.start_transfer(
                self.tenant_id, egress, size=None, demand=out_rate,
                tags=self._tags(kind="egress"),
            ),
        ]
        self._generator.start()

    def _on_stop(self) -> None:
        self._generator.stop()
        for flow in self._demand_flows:
            if self.network.has_flow(flow.flow_id):
                self.network.cancel_flow(flow.flow_id)
        self._demand_flows.clear()

    def _serve_request(self) -> None:
        try:
            path = self._path(self.nic, self.dimm)
        except NoPathError:
            # Fabric partitioned: the request is lost, not crashed on.
            return
        fabric_rtt = self.network.round_trip_latency(
            path, self.request_bytes, self.response_bytes
        )
        # Log-normal service jitter: keeps the fabric contribution exact
        # while giving the recorded distribution a realistic tail.
        service = self.service_time * self.rng.lognormvariate(0.0, 0.35)
        latency = fabric_rtt + service
        if math.isinf(latency):
            # Path is down: the request is lost, not recorded as a latency.
            return

        def complete() -> None:
            self.stats.ops_completed += 1
            self.stats.bytes_moved += self.request_bytes + self.response_bytes
            self.stats.latencies.append(latency)

        self.engine.schedule_in(latency, complete, label="kv-response")

    def set_request_rate(self, rate: float) -> None:
        """Change the offered request rate and the demand flows to match."""
        self.request_rate = rate
        self._generator.set_rate(rate)
        if self._demand_flows:
            self.network.set_flow_demand(
                self._demand_flows[0].flow_id, rate * self.request_bytes
            )
            self.network.set_flow_demand(
                self._demand_flows[1].flow_id, rate * self.response_bytes
            )


class NvmeScanApp(Application):
    """Storage scan: closed-loop sequential chunk reads NVMe -> DIMM."""

    def __init__(self, network: FabricNetwork, tenant_id: str,
                 nvme: str, dimm: str, chunk_bytes: float = mib(64),
                 concurrency: int = 4, device_rate: float = Gbps(54),
                 name: str = "nvme-scan", seed: int = 0) -> None:
        if chunk_bytes <= 0:
            raise WorkloadError("chunk_bytes must be > 0")
        super().__init__(network, tenant_id, name, seed)
        self.nvme = nvme
        self.dimm = dimm
        self.chunk_bytes = chunk_bytes
        self.device_rate = device_rate
        self._generator = ClosedLoopGenerator(
            self.engine, self._launch_chunk, concurrency=concurrency,
        )

    def _on_start(self) -> None:
        self._generator.start()

    def _on_stop(self) -> None:
        self._generator.stop()

    def _launch_chunk(self) -> None:
        path = self._path(self.nvme, self.dimm)
        launched_at = self.engine.now

        def finished(flow: Flow) -> None:
            self.stats.ops_completed += 1
            self.stats.bytes_moved += self.chunk_bytes
            self.stats.latencies.append(self.engine.now - launched_at)
            self._generator.operation_done()

        self.network.start_transfer(
            self.tenant_id, path, size=self.chunk_bytes,
            demand=self.device_rate / max(self._generator.in_flight, 1),
            on_complete=finished, tags=self._tags(kind="chunk"),
        )


class GpuAllReduceApp(Application):
    """Inter-GPU collective: closed-loop ring exchanges between GPU pairs.

    On multi-socket hosts the ring crosses root complexes and UPI — the
    PCIe contention BytePS [31] schedules around.
    """

    def __init__(self, network: FabricNetwork, tenant_id: str,
                 gpus: List[str], shard_bytes: float = mib(128),
                 name: str = "gpu-allreduce", seed: int = 0) -> None:
        if len(gpus) < 2:
            raise WorkloadError("all-reduce needs at least two GPUs")
        super().__init__(network, tenant_id, name, seed)
        self.gpus = list(gpus)
        self.shard_bytes = shard_bytes
        self._generator = ClosedLoopGenerator(
            self.engine, self._launch_round, concurrency=1,
        )

    def _on_start(self) -> None:
        self._generator.start()

    def _on_stop(self) -> None:
        self._generator.stop()

    def _launch_round(self) -> None:
        """One ring round: every GPU sends a shard to its ring successor."""
        launched_at = self.engine.now
        pending = {"count": len(self.gpus)}

        def one_done(flow: Flow) -> None:
            pending["count"] -= 1
            self.stats.bytes_moved += self.shard_bytes
            if pending["count"] == 0:
                self.stats.ops_completed += 1
                self.stats.latencies.append(self.engine.now - launched_at)
                self._generator.operation_done()

        for i, gpu in enumerate(self.gpus):
            successor = self.gpus[(i + 1) % len(self.gpus)]
            path = self._path(gpu, successor)
            self.network.start_transfer(
                self.tenant_id, path, size=self.shard_bytes,
                on_complete=one_done, tags=self._tags(kind="shard"),
            )


class MaliciousFloodApp(Application):
    """Adversarial tenant flooding a victim's fabric path (§2, E9).

    Launches *flow_count* elastic flows along the given source/destination
    pair; with max-min fairness, N flows grab an N/(N+1) share of every
    link they cross — the textbook way a tenant starves co-located victims
    without any single flow looking abnormal.
    """

    def __init__(self, network: FabricNetwork, tenant_id: str,
                 src: str, dst: str, flow_count: int = 8,
                 per_flow_demand: float = math.inf,
                 name: str = "malicious-flood", seed: int = 0) -> None:
        if flow_count < 1:
            raise WorkloadError("flow_count must be >= 1")
        super().__init__(network, tenant_id, name, seed)
        self.src = src
        self.dst = dst
        self.flow_count = flow_count
        self.per_flow_demand = per_flow_demand
        self._flows: List[Flow] = []

    def _on_start(self) -> None:
        path = self._path(self.src, self.dst)
        for i in range(self.flow_count):
            self._flows.append(
                self.network.start_transfer(
                    self.tenant_id, path, size=None,
                    demand=self.per_flow_demand,
                    tags=self._tags(index=str(i)),
                )
            )

    def _on_stop(self) -> None:
        for flow in self._flows:
            if self.network.has_flow(flow.flow_id):
                self.network.cancel_flow(flow.flow_id)
        self._flows.clear()

    def attack_rate(self) -> float:
        """Current aggregate attack bandwidth (bytes/s)."""
        return sum(
            f.current_rate for f in self._flows
            if self.network.has_flow(f.flow_id)
        )
