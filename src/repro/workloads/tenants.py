"""Tenant registry for multi-tenant hosts.

Tenants are the unit of isolation in §3.2: every flow is attributed to one,
the monitor reports per-tenant usage where the data source allows it, and
the resource manager allocates per tenant.  A tenant may be flagged
``malicious`` for adversarial experiments (E9) — the flag changes nothing in
the fabric (attackers don't announce themselves); it only labels ground
truth for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from ..errors import DuplicateElementError, UnknownTenantError


@dataclass(frozen=True)
class Tenant:
    """One tenant (VM / container) sharing the host.

    Attributes:
        tenant_id: Unique id.
        name: Human-readable label.
        priority: Relative importance class (higher = more important);
            policies may map this to fairness weights.
        malicious: Ground-truth adversarial flag for experiments.
    """

    tenant_id: str
    name: str = ""
    priority: int = 1
    malicious: bool = False

    def __post_init__(self) -> None:
        if self.priority < 1:
            raise ValueError(f"priority must be >= 1, got {self.priority}")


class TenantRegistry:
    """The set of tenants currently on the host."""

    def __init__(self) -> None:
        self._tenants: Dict[str, Tenant] = {}

    def register(self, tenant: Tenant) -> Tenant:
        """Add *tenant*; raises :class:`DuplicateElementError` on reuse."""
        if tenant.tenant_id in self._tenants:
            raise DuplicateElementError(
                f"tenant already registered: {tenant.tenant_id!r}"
            )
        self._tenants[tenant.tenant_id] = tenant
        return tenant

    def create(self, tenant_id: str, name: str = "", priority: int = 1,
               malicious: bool = False) -> Tenant:
        """Build and register a tenant in one call."""
        return self.register(
            Tenant(tenant_id=tenant_id, name=name or tenant_id,
                   priority=priority, malicious=malicious)
        )

    def remove(self, tenant_id: str) -> Tenant:
        """Remove and return a tenant."""
        tenant = self.get(tenant_id)
        del self._tenants[tenant_id]
        return tenant

    def get(self, tenant_id: str) -> Tenant:
        """Look up a tenant or raise :class:`UnknownTenantError`."""
        try:
            return self._tenants[tenant_id]
        except KeyError:
            raise UnknownTenantError(tenant_id) from None

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self._tenants.values())

    def ids(self) -> List[str]:
        """All tenant ids, in registration order."""
        return list(self._tenants)

    def honest(self) -> List[Tenant]:
        """Tenants not flagged malicious."""
        return [t for t in self._tenants.values() if not t.malicious]

    def adversaries(self) -> List[Tenant]:
        """Tenants flagged malicious (ground truth for experiments)."""
        return [t for t in self._tenants.values() if t.malicious]
