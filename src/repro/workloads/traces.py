"""Synthetic trace generation and replay.

The paper's vision needs realistic multi-tenant churn (tenants "come and
go", §3.2).  Since production traces are proprietary, we synthesize them:
a :class:`TraceGenerator` draws tenant sessions (arrival time, duration,
application mix, intensity) from seeded distributions, producing a
:class:`Trace` that can be replayed deterministically against any policy —
so every baseline sees byte-identical load.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional

from ..errors import WorkloadError
from ..sim.rng import make_rng
from ..units import Gbps, mib


class AppKind(enum.Enum):
    """Application archetypes a trace can schedule."""

    KV_STORE = "kv_store"
    ML_TRAINING = "ml_training"
    NVME_SCAN = "nvme_scan"
    RDMA_LOOPBACK = "rdma_loopback"


@dataclass(frozen=True)
class TraceEvent:
    """One tenant session in a trace.

    Attributes:
        tenant_id: Session owner.
        app_kind: Which archetype to run.
        start: Session start (seconds).
        duration: Session length (seconds).
        intensity: Archetype-specific load scale in (0, 1]; 1.0 is the
            archetype's full configured demand.
    """

    tenant_id: str
    app_kind: AppKind
    start: float
    duration: float
    intensity: float

    @property
    def end(self) -> float:
        """Session end time."""
        return self.start + self.duration


@dataclass
class Trace:
    """An ordered collection of tenant sessions."""

    events: List[TraceEvent]

    def __post_init__(self) -> None:
        self.events.sort(key=lambda e: (e.start, e.tenant_id))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """Time at which the last session ends."""
        return max((e.end for e in self.events), default=0.0)

    def tenants(self) -> List[str]:
        """Distinct tenant ids, sorted."""
        return sorted({e.tenant_id for e in self.events})

    def concurrent_at(self, t: float) -> int:
        """Number of sessions active at time *t*."""
        return sum(1 for e in self.events if e.start <= t < e.end)

    def to_json(self) -> str:
        """Serialize to JSON (for EXPERIMENTS.md artifacts)."""
        payload = [
            {**asdict(e), "app_kind": e.app_kind.value} for e in self.events
        ]
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Rebuild a trace serialized with :meth:`to_json`."""
        raw = json.loads(text)
        events = [
            TraceEvent(
                tenant_id=item["tenant_id"],
                app_kind=AppKind(item["app_kind"]),
                start=float(item["start"]),
                duration=float(item["duration"]),
                intensity=float(item["intensity"]),
            )
            for item in raw
        ]
        return cls(events=events)


class TraceGenerator:
    """Draws deterministic synthetic tenant-churn traces.

    Args:
        seed: Base seed; every generated trace is a pure function of the
            seed and the arguments.
        mix: Probability weight per :class:`AppKind` (defaults to uniform).
    """

    def __init__(self, seed: int = 0,
                 mix: Optional[Dict[AppKind, float]] = None) -> None:
        self._seed = seed
        if mix is None:
            mix = {kind: 1.0 for kind in AppKind}
        if not mix or any(w < 0 for w in mix.values()):
            raise WorkloadError("mix must be non-empty with weights >= 0")
        total = sum(mix.values())
        if total <= 0:
            raise WorkloadError("mix weights must sum to > 0")
        self._kinds = list(mix)
        self._weights = [mix[k] / total for k in self._kinds]

    def generate(
        self,
        tenant_count: int = 8,
        horizon: float = 10.0,
        mean_sessions_per_tenant: float = 2.0,
        mean_duration: float = 2.0,
    ) -> Trace:
        """Generate a trace of tenant sessions over *horizon* seconds."""
        if tenant_count < 1:
            raise WorkloadError("tenant_count must be >= 1")
        rng = make_rng(self._seed, "trace")
        events: List[TraceEvent] = []
        for t in range(tenant_count):
            tenant_id = f"tenant{t}"
            sessions = max(1, int(round(rng.expovariate(
                1.0 / mean_sessions_per_tenant
            ))))
            for _ in range(sessions):
                start = rng.uniform(0.0, horizon * 0.8)
                duration = min(
                    max(rng.expovariate(1.0 / mean_duration), horizon * 0.02),
                    horizon - start,
                )
                kind = rng.choices(self._kinds, weights=self._weights, k=1)[0]
                events.append(
                    TraceEvent(
                        tenant_id=tenant_id,
                        app_kind=kind,
                        start=start,
                        duration=duration,
                        intensity=rng.uniform(0.3, 1.0),
                    )
                )
        return Trace(events=events)


class TraceReplayer:
    """Replays a :class:`Trace` by invoking start/stop callbacks on time.

    The caller supplies ``make_app(event)`` returning an object with
    ``start()``/``stop()`` (any :class:`~repro.workloads.apps.Application`
    qualifies); the replayer schedules those calls on the engine.
    """

    def __init__(self, engine, trace: Trace,
                 make_app: Callable[[TraceEvent], object]) -> None:
        self._engine = engine
        self._trace = trace
        self._make_app = make_app
        self.active: Dict[int, object] = {}
        self._armed = False

    def arm(self) -> None:
        """Schedule every session's start/stop on the engine (once)."""
        if self._armed:
            raise WorkloadError("trace already armed")
        self._armed = True
        for index, event in enumerate(self._trace):
            self._engine.schedule_at(
                event.start, self._starter(index, event), label="trace-start"
            )
            self._engine.schedule_at(
                event.end, self._stopper(index), label="trace-stop"
            )

    def _starter(self, index: int, event: TraceEvent) -> Callable[[], None]:
        def run() -> None:
            app = self._make_app(event)
            self.active[index] = app
            app.start()

        return run

    def _stopper(self, index: int) -> Callable[[], None]:
        def run() -> None:
            app = self.active.pop(index, None)
            if app is not None:
                app.stop()

        return run


#: Default archetype parameters used by trace-driven experiments: the
#: intensity field scales these.
ARCHETYPE_DEFAULTS = {
    AppKind.KV_STORE: {"request_rate": 100_000.0},
    AppKind.ML_TRAINING: {"batch_bytes": mib(256)},
    AppKind.NVME_SCAN: {"chunk_bytes": mib(64)},
    AppKind.RDMA_LOOPBACK: {"offered_rate": Gbps(100)},
}
