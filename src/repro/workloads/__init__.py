"""Synthetic workloads: tenants, arrival generators, applications, traces.

Datacenter-trace ingestion and fleet-scale replay live in the
:mod:`~repro.workloads.cluster_traces` subpackage (imported lazily by the
fleet CLI; re-exported here for library users).
"""

from .apps import (
    Application,
    AppStats,
    GpuAllReduceApp,
    KvStoreApp,
    MaliciousFloodApp,
    MlTrainingApp,
    NvmeScanApp,
    RdmaLoopbackApp,
)
from .generators import ClosedLoopGenerator, OpenLoopGenerator
from .tenants import Tenant, TenantRegistry
from .cluster_traces import (
    ClusterTask,
    ClusterTrace,
    IngestConfig,
    PolicyComparison,
    ReplayConfig,
    ReplayReport,
    SynthTraceConfig,
    compare_policies,
    ingest_csv,
    ingest_json,
    load_trace,
    replay_trace,
    synthesize_trace,
)
from .traces import (
    ARCHETYPE_DEFAULTS,
    AppKind,
    Trace,
    TraceEvent,
    TraceGenerator,
    TraceReplayer,
)

__all__ = [
    "Tenant",
    "TenantRegistry",
    "OpenLoopGenerator",
    "ClosedLoopGenerator",
    "Application",
    "AppStats",
    "RdmaLoopbackApp",
    "MlTrainingApp",
    "KvStoreApp",
    "NvmeScanApp",
    "GpuAllReduceApp",
    "MaliciousFloodApp",
    "AppKind",
    "TraceEvent",
    "Trace",
    "TraceGenerator",
    "TraceReplayer",
    "ARCHETYPE_DEFAULTS",
    "ClusterTask",
    "ClusterTrace",
    "IngestConfig",
    "SynthTraceConfig",
    "synthesize_trace",
    "ingest_csv",
    "ingest_json",
    "load_trace",
    "ReplayConfig",
    "ReplayReport",
    "PolicyComparison",
    "replay_trace",
    "compare_policies",
]
