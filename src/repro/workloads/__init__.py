"""Synthetic workloads: tenants, arrival generators, applications, traces."""

from .apps import (
    Application,
    AppStats,
    GpuAllReduceApp,
    KvStoreApp,
    MaliciousFloodApp,
    MlTrainingApp,
    NvmeScanApp,
    RdmaLoopbackApp,
)
from .generators import ClosedLoopGenerator, OpenLoopGenerator
from .tenants import Tenant, TenantRegistry
from .traces import (
    ARCHETYPE_DEFAULTS,
    AppKind,
    Trace,
    TraceEvent,
    TraceGenerator,
    TraceReplayer,
)

__all__ = [
    "Tenant",
    "TenantRegistry",
    "OpenLoopGenerator",
    "ClosedLoopGenerator",
    "Application",
    "AppStats",
    "RdmaLoopbackApp",
    "MlTrainingApp",
    "KvStoreApp",
    "NvmeScanApp",
    "GpuAllReduceApp",
    "MaliciousFloodApp",
    "AppKind",
    "TraceEvent",
    "Trace",
    "TraceGenerator",
    "TraceReplayer",
    "ARCHETYPE_DEFAULTS",
]
