"""The normalized cluster-trace schema.

Every source of fleet load — a real datacenter task table, the seeded
synthesizer, a replayed JSON artifact — converges on one schema before it
touches a :class:`~repro.fleet.Fleet`: a flat, arrival-ordered list of
:class:`ClusterTask` records.  That is what makes runs comparable (the
gem5 standardized-simulation lesson from PAPERS.md): two policies, two
clock disciplines, or two PRs are only ever measured on byte-identical
normalized load, never on "roughly the same" raw files.

The JSON round-trip is versioned (:data:`SCHEMA_VERSION`) and canonical —
sorted keys, fixed separators — so that *same trace* is decidable by
string equality: the determinism suite asserts the synthesizer's output
is byte-identical across runs, and replay artifacts embed the schema tag
so a future reader can refuse what it does not understand.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List

from ...errors import WorkloadError

#: Version tag embedded in every serialized trace and replay report.
SCHEMA_VERSION = "repro.cluster-trace/v1"


@dataclass(frozen=True)
class ClusterTask:
    """One tenant task (session) from a datacenter trace, normalized.

    Attributes:
        task_id: Unique id within the trace.
        job_id: Grouping key — tasks of one job arrive together-ish and
            belong to one tenant (Alibaba ``job_name``).
        tenant_id: The owning tenant (Alibaba ``user``; synthesized when
            the source table has no user column).
        arrival: Arrival time in seconds, rebased so the trace starts
            at (or near) 0.
        duration: Service time in seconds once admitted (> 0).
        bandwidth: Intra-host bandwidth demand in bytes/s — the
            placement-relevant projection of the task's multi-resource
            demand vector (> 0).
        cpu: Original CPU demand in cores (informational; kept so a
            multi-resource placement PR can re-score the same trace).
        memory: Original memory demand, normalized units (informational).
        bidirectional: Whether the replayed pipe guards both directions.
    """

    task_id: str
    job_id: str
    tenant_id: str
    arrival: float
    duration: float
    bandwidth: float
    cpu: float = 0.0
    memory: float = 0.0
    bidirectional: bool = False

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise WorkloadError(
                f"task {self.task_id!r}: arrival must be >= 0, "
                f"got {self.arrival}"
            )
        if self.duration <= 0:
            raise WorkloadError(
                f"task {self.task_id!r}: duration must be > 0, "
                f"got {self.duration}"
            )
        if self.bandwidth <= 0:
            raise WorkloadError(
                f"task {self.task_id!r}: bandwidth must be > 0, "
                f"got {self.bandwidth}"
            )

    @property
    def completion(self) -> float:
        """Earliest possible completion: arrival + duration (no waiting)."""
        return self.arrival + self.duration


@dataclass
class ClusterTrace:
    """An arrival-ordered collection of :class:`ClusterTask` records.

    Attributes:
        tasks: The tasks, kept sorted by ``(arrival, task_id)``.
        name: Provenance label (source file stem or synth config digest)
            carried into replay reports.
    """

    tasks: List[ClusterTask]
    name: str = "trace"

    def __post_init__(self) -> None:
        ids = set()
        for task in self.tasks:
            if task.task_id in ids:
                raise WorkloadError(
                    f"trace {self.name!r}: duplicate task id "
                    f"{task.task_id!r}"
                )
            ids.add(task.task_id)
        self.tasks.sort(key=lambda t: (t.arrival, t.task_id))

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    @property
    def horizon(self) -> float:
        """Latest no-wait completion time across all tasks."""
        return max((t.completion for t in self.tasks), default=0.0)

    def tenants(self) -> List[str]:
        """Distinct tenant ids, sorted."""
        return sorted({t.tenant_id for t in self.tasks})

    def jobs(self) -> List[str]:
        """Distinct job ids, sorted."""
        return sorted({t.job_id for t in self.tasks})

    def mean_duration(self) -> float:
        """Mean task duration (0.0 for an empty trace)."""
        if not self.tasks:
            return 0.0
        return sum(t.duration for t in self.tasks) / len(self.tasks)

    def concurrent_at(self, t: float) -> int:
        """Tasks whose no-wait interval covers time *t*."""
        return sum(1 for task in self.tasks
                   if task.arrival <= t < task.completion)

    def describe(self) -> str:
        """One-line trace summary."""
        return (f"ClusterTrace {self.name!r}: {len(self.tasks)} tasks, "
                f"{len(self.tenants())} tenants, {len(self.jobs())} jobs, "
                f"horizon {self.horizon:g}s")

    # -- the versioned round-trip -------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON: versioned, sorted keys, fixed separators.

        Two traces are the same trace iff their serializations are equal
        as strings — the determinism tests rely on this.
        """
        payload = {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "tasks": [
                {
                    "task_id": t.task_id,
                    "job_id": t.job_id,
                    "tenant_id": t.tenant_id,
                    "arrival": t.arrival,
                    "duration": t.duration,
                    "bandwidth": t.bandwidth,
                    "cpu": t.cpu,
                    "memory": t.memory,
                    "bidirectional": t.bidirectional,
                }
                for t in self.tasks
            ],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ClusterTrace":
        """Rebuild a trace serialized with :meth:`to_json`.

        Raises :class:`~repro.errors.WorkloadError` on a missing or
        unknown schema tag — silently replaying a future schema would
        produce numbers that *look* comparable and are not.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WorkloadError(f"not a cluster trace: {exc}") from exc
        if not isinstance(payload, dict):
            raise WorkloadError(
                "not a cluster trace: expected a JSON object with a "
                f"'schema' tag, got {type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise WorkloadError(
                f"unsupported cluster-trace schema {schema!r} "
                f"(this build reads {SCHEMA_VERSION!r})"
            )
        tasks = [
            ClusterTask(
                task_id=str(item["task_id"]),
                job_id=str(item["job_id"]),
                tenant_id=str(item["tenant_id"]),
                arrival=float(item["arrival"]),
                duration=float(item["duration"]),
                bandwidth=float(item["bandwidth"]),
                cpu=float(item.get("cpu", 0.0)),
                memory=float(item.get("memory", 0.0)),
                bidirectional=bool(item.get("bidirectional", False)),
            )
            for item in payload.get("tasks", [])
        ]
        return cls(tasks=tasks, name=str(payload.get("name", "trace")))


def rebase_and_scale(tasks: List[ClusterTask], time_scale: float = 1.0,
                     bandwidth_scale: float = 1.0) -> List[ClusterTask]:
    """Normalize raw task timings: rebase arrivals to start at 0 and
    scale times/bandwidths.

    Raw datacenter tables stamp arrivals in epoch-ish seconds and span
    hours; simulation wants the trace to start at 0 and often wants time
    compressed (``time_scale < 1``) so a lockstep equivalence run stays
    tractable.  Durations scale with arrivals so the *load shape* (the
    concurrency profile) is preserved exactly.
    """
    if time_scale <= 0:
        raise WorkloadError(f"time_scale must be > 0, got {time_scale}")
    if bandwidth_scale <= 0:
        raise WorkloadError(
            f"bandwidth_scale must be > 0, got {bandwidth_scale}"
        )
    if not tasks:
        return []
    base = min(t.arrival for t in tasks)
    return [
        ClusterTask(
            task_id=t.task_id,
            job_id=t.job_id,
            tenant_id=t.tenant_id,
            arrival=(t.arrival - base) * time_scale,
            duration=t.duration * time_scale,
            bandwidth=t.bandwidth * bandwidth_scale,
            cpu=t.cpu,
            memory=t.memory,
            bidirectional=t.bidirectional,
        )
        for t in tasks
    ]


def trace_summary(trace: ClusterTrace) -> Dict[str, float]:
    """Aggregate shape figures for logs and reports."""
    if not trace.tasks:
        return {"tasks": 0, "tenants": 0, "jobs": 0, "horizon": 0.0,
                "mean_duration": 0.0, "mean_bandwidth": 0.0}
    return {
        "tasks": len(trace),
        "tenants": len(trace.tenants()),
        "jobs": len(trace.jobs()),
        "horizon": trace.horizon,
        "mean_duration": trace.mean_duration(),
        "mean_bandwidth": (sum(t.bandwidth for t in trace.tasks)
                           / len(trace)),
    }
