"""Seeded synthesis of cluster traces in the normalized schema.

When no real trace file is given, the replay harness still needs
datacenter-*shaped* load — not the steady Poisson stream of the fleet
churn generator, but what public task tables actually look like:

* **bursty arrivals** — a sinusoidally modulated Poisson process (the
  diurnal swell every cluster trace shows), sampled by thinning so the
  draw count per accepted arrival is deterministic;
* **job structure** — tasks arrive in jobs (geometric sizes, small
  arrival stagger within a job) owned by one tenant, so tenant load is
  correlated the way real tenants are;
* **bimodal demand** — a churning crowd of small pipes plus a heavy tail
  near link capacity, the regime where placement policy decides the
  rejection rate (same rationale as ``FleetChurnConfig``);
* **heavy-tailed durations** — lognormal service times, so JCT
  percentiles have a tail worth reporting.

Everything derives from one seed: the same config is guaranteed to emit
a byte-identical :meth:`ClusterTrace.to_json`, which is what lets two
policies (or two clock disciplines, or two PRs) be compared on provably
identical load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ...errors import WorkloadError
from ...sim.rng import make_rng
from ...units import Gbps
from .schema import ClusterTask, ClusterTrace


@dataclass(frozen=True)
class SynthTraceConfig:
    """Knobs for one synthesized trace.

    Attributes:
        seed: Master seed; the emitted trace is a pure function of this
            config.
        tasks: Target task count (the generator stops at exactly this
            many, so reports are comparable across configs).
        tenants: Tenant pool size; each job is owned by one tenant.
        horizon: Seconds of simulated arrivals (the last task may finish
            after it; replay drains naturally).
        mean_job_size: Mean tasks per job (geometric distribution).
        job_stagger: Max seconds between consecutive task arrivals
            within one job.
        burst_cycles: Full diurnal-style cycles across the horizon.
        burst_amplitude: Arrival-rate modulation depth in [0, 1); 0 is a
            homogeneous Poisson process.
        mean_duration: Median-ish task duration (lognormal median).
        duration_sigma: Lognormal shape; higher = heavier JCT tail.
        small_bandwidth / large_bandwidth: (lo, hi) bytes/s of the two
            demand modes.
        large_fraction: Probability a task is heavy-tail.
        bidirectional_fraction: Probability a task's pipe guards both
            directions.
    """

    seed: int = 0
    tasks: int = 10_000
    tenants: int = 128
    horizon: float = 20.0
    mean_job_size: float = 3.0
    job_stagger: float = 0.01
    burst_cycles: int = 3
    burst_amplitude: float = 0.6
    mean_duration: float = 0.5
    duration_sigma: float = 0.8
    small_bandwidth: Tuple[float, float] = (Gbps(5), Gbps(40))
    large_bandwidth: Tuple[float, float] = (Gbps(120), Gbps(200))
    large_fraction: float = 0.15
    bidirectional_fraction: float = 0.25


def synthesize_trace(config: SynthTraceConfig) -> ClusterTrace:
    """Emit a normalized trace from seeded distributions.

    Job arrivals follow a non-homogeneous Poisson process with rate
    ``base * (1 + amplitude * sin(2*pi*cycles * t/horizon))``, sampled by
    thinning against the peak rate; each job then spawns a geometric
    number of tasks with a small stagger.  Generation stops at exactly
    ``config.tasks`` tasks.
    """
    if config.tasks < 1:
        raise WorkloadError(f"tasks must be >= 1, got {config.tasks}")
    if config.tenants < 1:
        raise WorkloadError(f"tenants must be >= 1, got {config.tenants}")
    if config.horizon <= 0:
        raise WorkloadError(f"horizon must be > 0, got {config.horizon}")
    if not 0 <= config.burst_amplitude < 1:
        raise WorkloadError(
            f"burst_amplitude must be in [0, 1), got "
            f"{config.burst_amplitude}"
        )
    rng = make_rng(config.seed, "cluster-trace-synth")
    # Base job-arrival rate sized so ~tasks arrive inside the horizon;
    # thinning below only reshapes arrivals in time, it does not change
    # their count, so the stop-at-N loop terminates with arrivals still
    # spread over most of the horizon.
    jobs_target = max(1.0, config.tasks / config.mean_job_size)
    base_rate = jobs_target / config.horizon
    peak_rate = base_rate * (1.0 + config.burst_amplitude)
    omega = 2.0 * math.pi * config.burst_cycles / config.horizon

    tasks: List[ClusterTask] = []
    t = 0.0
    job_index = 0
    while len(tasks) < config.tasks:
        t += rng.expovariate(peak_rate)
        if t >= config.horizon:
            # Wrap: bursty thinning can under-deliver inside one pass
            # (some candidates rejected); keep cycling the same seasonal
            # profile until the target count is reached.
            t -= config.horizon
        rate = base_rate * (1.0 + config.burst_amplitude
                            * math.sin(omega * t))
        if rng.random() * peak_rate > rate:
            continue  # thinned: this candidate is off-peak
        job_id = f"j{job_index:05d}"
        tenant_id = f"u{rng.randrange(config.tenants):03d}"
        job_index += 1
        size = 1 + min(
            int(rng.expovariate(1.0 / max(config.mean_job_size - 1.0,
                                          1e-9)))
            if config.mean_job_size > 1.0 else 0,
            64,  # cap pathological draws; keeps job sizes plausible
        )
        arrival = t
        for i in range(size):
            if len(tasks) >= config.tasks:
                break
            if i:
                arrival += rng.uniform(0.0, config.job_stagger)
            duration = config.mean_duration * math.exp(
                rng.gauss(0.0, config.duration_sigma)
            )
            duration = max(duration, config.mean_duration * 0.05)
            if rng.random() < config.large_fraction:
                lo, hi = config.large_bandwidth
            else:
                lo, hi = config.small_bandwidth
            tasks.append(ClusterTask(
                task_id=f"{job_id}/t{i:02d}",
                job_id=job_id,
                tenant_id=tenant_id,
                arrival=arrival,
                duration=duration,
                bandwidth=rng.uniform(lo, hi),
                cpu=round(rng.uniform(0.5, 8.0), 2),
                memory=round(rng.uniform(0.1, 4.0), 2),
                bidirectional=rng.random() < config.bidirectional_fraction,
            ))
    return ClusterTrace(
        tasks=tasks,
        name=f"synth-s{config.seed}-n{config.tasks}",
    )
