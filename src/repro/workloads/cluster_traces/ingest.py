"""Datacenter task tables → normalized :class:`ClusterTrace`.

Two wire formats converge here:

* **CSV** in the Alibaba cluster-trace ``batch_task`` shape — columns for
  task/job names, start/end timestamps, and planned CPU/memory demand
  (``plan_cpu`` in centi-cores, ``plan_mem`` in normalized units).  The
  column vocabulary is a :class:`ColumnMap`, so other public traces
  (Google, Azure) are one mapping away, not one parser away.
* **JSON** — either our own versioned schema (passed through verbatim) or
  a plain list of task objects using the same column vocabulary.

The one modeling decision ingestion makes is the multi-resource
projection: the fleet places *intra-host bandwidth* pipes, so a task's
``(cpu, mem)`` demand vector is projected onto bytes/s via the linear
:class:`IngestConfig` weights — CPU-heavy tasks stream more traffic
between I/O devices and memory, memory-heavy tasks shift the mix — then
clamped into the fleet's plausible pipe range.  The raw ``cpu``/``mem``
figures ride along on every :class:`ClusterTask` untouched, so a later
multi-resource placement PR can re-score byte-identical traces without
re-ingesting.
"""

from __future__ import annotations

import csv
import io
import json
import os
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from ...errors import WorkloadError
from ...units import Gbps
from .schema import ClusterTask, ClusterTrace, rebase_and_scale


@dataclass(frozen=True)
class ColumnMap:
    """Source-table column names for the fields the schema needs.

    Defaults follow the Alibaba cluster-trace v2018 ``batch_task`` table.
    ``user`` and ``status`` may be absent from the source (``None`` /
    missing column tolerated): tenants are then derived from the job id
    and no status filtering happens.
    """

    task: str = "task_name"
    job: str = "job_name"
    user: str = "user"
    status: str = "status"
    start: str = "start_time"
    end: str = "end_time"
    cpu: str = "plan_cpu"
    mem: str = "plan_mem"
    instances: str = "instance_num"


@dataclass(frozen=True)
class IngestConfig:
    """Knobs for normalizing one raw table.

    Attributes:
        columns: Source column vocabulary.
        keep_status: Row status values to keep (Alibaba marks finished
            tasks ``Terminated``); ``None`` keeps every row.
        time_scale: Multiplier applied to rebased arrivals *and*
            durations — compresses an hours-long trace into simulated
            seconds while preserving the concurrency profile.
        cpu_bandwidth_per_core: bytes/s of pipe demand per planned core.
        mem_bandwidth_per_unit: bytes/s per planned memory unit.
        min_bandwidth / max_bandwidth: Clamp range for the projected
            demand, in bytes/s (the fleet's plausible pipe sizes).
        tenant_buckets: When the table has no user column, tenants are
            synthesized by hashing the job id into this many buckets —
            stable across runs (CRC32, not Python's randomized hash).
        bidirectional_every: Every n-th kept row (by stable task-id hash)
            guards both directions, matching the churn workload's mix of
            request/response services; 0 disables.
    """

    columns: ColumnMap = ColumnMap()
    keep_status: Optional[frozenset] = frozenset({"Terminated"})
    time_scale: float = 1.0
    cpu_bandwidth_per_core: float = Gbps(30)
    mem_bandwidth_per_unit: float = Gbps(1.2)
    min_bandwidth: float = Gbps(5)
    max_bandwidth: float = Gbps(200)
    tenant_buckets: int = 64
    bidirectional_every: int = 4

    def project_bandwidth(self, cpu_cores: float, mem_units: float) -> float:
        """The multi-resource → bandwidth projection, clamped."""
        raw = (cpu_cores * self.cpu_bandwidth_per_core
               + mem_units * self.mem_bandwidth_per_unit)
        return min(max(raw, self.min_bandwidth), self.max_bandwidth)


def _stable_hash(text: str) -> int:
    """Deterministic across processes (unlike ``hash()``)."""
    return zlib.crc32(text.encode("utf-8"))


def _tenant_for(job_id: str, user: Optional[str],
                config: IngestConfig) -> str:
    if user:
        return user
    return f"u{_stable_hash(job_id) % config.tenant_buckets:03d}"


def _float_field(row: Dict[str, str], column: str, task_id: str) -> float:
    value = row.get(column, "")
    if value in ("", None):
        return 0.0
    try:
        return float(value)
    except (TypeError, ValueError):
        raise WorkloadError(
            f"task {task_id!r}: column {column!r} is not numeric: "
            f"{value!r}"
        ) from None


def ingest_rows(rows: List[Dict[str, str]], config: IngestConfig,
                name: str) -> ClusterTrace:
    """Normalize already-parsed rows (shared CSV/JSON tail)."""
    cols = config.columns
    tasks: List[ClusterTask] = []
    seen: Dict[str, int] = {}
    for row in rows:
        status = row.get(cols.status)
        if (config.keep_status is not None and status is not None
                and status not in config.keep_status):
            continue
        job_id = str(row.get(cols.job, "") or "")
        raw_task = str(row.get(cols.task, "") or "")
        if not job_id or not raw_task:
            continue
        task_id = f"{job_id}/{raw_task}"
        # Real tables repeat (job, task) across instance rows; keep ids
        # unique without dropping load.
        count = seen.get(task_id, 0)
        seen[task_id] = count + 1
        if count:
            task_id = f"{task_id}#{count}"
        start = _float_field(row, cols.start, task_id)
        end = _float_field(row, cols.end, task_id)
        if end <= start:
            continue  # unfinished or corrupt rows carry no service time
        cpu_cores = _float_field(row, cols.cpu, task_id) / 100.0
        mem_units = _float_field(row, cols.mem, task_id)
        bid = (config.bidirectional_every > 0
               and _stable_hash(task_id) % config.bidirectional_every == 0)
        tasks.append(ClusterTask(
            task_id=task_id,
            job_id=job_id,
            tenant_id=_tenant_for(job_id, row.get(cols.user), config),
            arrival=start,
            duration=end - start,
            bandwidth=config.project_bandwidth(cpu_cores, mem_units),
            cpu=cpu_cores,
            memory=mem_units,
            bidirectional=bid,
        ))
    if not tasks:
        raise WorkloadError(
            f"trace {name!r}: no usable rows after filtering "
            f"(keep_status={sorted(config.keep_status or [])}, "
            f"{len(rows)} rows read)"
        )
    return ClusterTrace(
        tasks=rebase_and_scale(tasks, time_scale=config.time_scale),
        name=name,
    )


def ingest_csv(text: str, config: Optional[IngestConfig] = None,
               name: str = "csv-trace") -> ClusterTrace:
    """Parse an Alibaba-style CSV task table into a normalized trace.

    A header row is required (it is what binds the :class:`ColumnMap`);
    headerless Alibaba raw dumps should be given one line naming their
    columns.
    """
    config = config or IngestConfig()
    reader = csv.DictReader(io.StringIO(text))
    if not reader.fieldnames:
        raise WorkloadError(f"trace {name!r}: empty CSV")
    missing = [c for c in (config.columns.task, config.columns.job,
                           config.columns.start, config.columns.end)
               if c not in reader.fieldnames]
    if missing:
        raise WorkloadError(
            f"trace {name!r}: CSV lacks required columns {missing} "
            f"(have {reader.fieldnames})"
        )
    return ingest_rows(list(reader), config, name)


def ingest_json(text: str, config: Optional[IngestConfig] = None,
                name: str = "json-trace") -> ClusterTrace:
    """Parse a JSON task table (or pass through our own schema).

    Accepts either the versioned :meth:`ClusterTrace.to_json` object —
    returned as-is, already normalized — or a bare JSON list of row
    objects keyed by the :class:`ColumnMap` vocabulary.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"trace {name!r}: not JSON: {exc}") from exc
    if isinstance(payload, dict) and "schema" in payload:
        return ClusterTrace.from_json(text)
    if not isinstance(payload, list):
        raise WorkloadError(
            f"trace {name!r}: expected a schema object or a list of "
            f"rows, got {type(payload).__name__}"
        )
    rows = [{k: v for k, v in item.items()} for item in payload]
    return ingest_rows(rows, config or IngestConfig(), name)


def load_trace(path: str, config: Optional[IngestConfig] = None,
               fmt: str = "auto") -> ClusterTrace:
    """Read a trace file, dispatching on *fmt* (or the extension).

    ``auto`` maps ``.csv`` → CSV and anything else → JSON, which covers
    both the bundled fixture and replay artifacts.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    name = os.path.splitext(os.path.basename(path))[0]
    if fmt == "auto":
        fmt = "csv" if path.lower().endswith(".csv") else "json"
    if fmt == "csv":
        return ingest_csv(text, config, name=name)
    if fmt == "json":
        return ingest_json(text, config, name=name)
    raise WorkloadError(
        f"unknown trace format {fmt!r}; choices: auto, csv, json"
    )
