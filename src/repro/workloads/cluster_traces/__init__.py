"""``repro.workloads.cluster_traces`` — datacenter traces, fleet scale.

The fleet layer's standard workload harness (ROADMAP #1): real or
synthesized datacenter task tables, normalized into one versioned
:class:`ClusterTrace` schema, replayed against a multi-host
:class:`~repro.fleet.Fleet` through its event-driven clock, and scored
into a per-policy SLO/JCT comparison report.  See DESIGN.md §13.

* :mod:`~repro.workloads.cluster_traces.schema` — the normalized task
  schema (:class:`ClusterTask`, :class:`ClusterTrace`) with a versioned
  JSON round-trip;
* :mod:`~repro.workloads.cluster_traces.ingest` — Alibaba-cluster-trace
  style CSV/JSON task tables → normalized traces;
* :mod:`~repro.workloads.cluster_traces.synth` — a seeded synthesizer
  emitting the same schema when no real trace file is given;
* :mod:`~repro.workloads.cluster_traces.replay` — trace → fleet replay
  (arrivals as placement intents, timed releases, deterministic retry
  queue) producing :class:`ReplayReport` / :class:`PolicyComparison`.
"""

from .ingest import (
    ColumnMap,
    IngestConfig,
    ingest_csv,
    ingest_json,
    load_trace,
)
from .replay import (
    PolicyComparison,
    ReplayConfig,
    ReplayReport,
    compare_policies,
    replay_trace,
)
from .schema import SCHEMA_VERSION, ClusterTask, ClusterTrace
from .synth import SynthTraceConfig, synthesize_trace

__all__ = [
    "SCHEMA_VERSION",
    "ClusterTask",
    "ClusterTrace",
    "ColumnMap",
    "IngestConfig",
    "ingest_csv",
    "ingest_json",
    "load_trace",
    "SynthTraceConfig",
    "synthesize_trace",
    "ReplayConfig",
    "ReplayReport",
    "PolicyComparison",
    "replay_trace",
    "compare_policies",
]
