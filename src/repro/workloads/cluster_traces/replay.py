"""Replay a normalized :class:`ClusterTrace` against a :class:`Fleet`.

The replay discipline mirrors ``repro.fleet.workload.run_churn`` — the
fleet advances to each event time under whatever clock it was built with,
so event-driven and lockstep runs see the identical interleaving — but a
trace replay is a richer contract than churn:

* **arrivals become placement intents.**  Each task maps to a pipe
  between deterministic reference-topology endpoints (stable task-id
  hash → NIC/GPU source, DIMM sink — the paper's canonical I/O-to-memory
  traffic), with the task's projected bandwidth demand.
* **rejections retry, deterministically.**  A rejected task backs off
  (exponential, seeded by nothing — the schedule is a pure function of
  the task) and retries until its waiting budget is spent; only then is
  it a *final* rejection.  This is what gives JCT a tail: a task that
  waits is late, not gone, exactly the task-lifecycle bookkeeping
  datacenter schedulers do.
* **completions release on time.**  Admission at ``t`` schedules the
  release at ``t + duration``; job completion time is
  ``release − arrival``, so ``JCT ≥ duration`` always, with equality iff
  the task never waited.
* **the fleet is sampled while it runs.**  At a fixed cadence the
  per-host telemetry rollups are read into a host-utilization
  distribution, so a policy that packs hot spots shows up even when its
  rejection rate looks fine.

The :class:`ReplayReport` serializes canonically (sorted keys, versioned
tag, the trace's content digest embedded) — two reports are the same
outcome iff their JSON strings are equal, which is how the determinism
suite asserts event == lockstep bit-for-bit.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ...core.intents import PerformanceTarget, pipe
from ...errors import FleetError, WorkloadError
from ...stats import percentile
from ...topology.elements import DeviceType
from .schema import SCHEMA_VERSION, ClusterTask, ClusterTrace

#: Version tag embedded in every serialized replay report.
#: v2 added the failure-run counters (``retries_exhausted``,
#: ``sessions_shed``), the ``availability`` figure, and the ``faults``
#: block — so failure runs are distinguishable from clean rejections.
REPORT_VERSION = "repro.cluster-replay/v2"

_ARRIVE, _RETRY, _COMPLETE, _SAMPLE = 0, 1, 2, 3


@dataclass(frozen=True)
class ReplayConfig:
    """Knobs for one replay run (policy-independent: every policy being
    compared must see the same retry and SLO discipline).

    Attributes:
        slo_stretch: A task attains its SLO iff
            ``JCT <= slo_stretch * duration``.  Final rejections never
            attain.
        retry: Whether rejected tasks re-queue at all; ``False`` makes
            every first rejection final (the churn workload's model).
        retry_backoff_fraction: First backoff as a fraction of the
            task's own duration — scale-free, so the same config works
            for second-long synthetic tasks and hour-long real ones.
        retry_backoff_growth: Exponential backoff multiplier per
            successive rejection.
        max_wait_fraction: A task abandons (final rejection) once its
            next retry would start later than
            ``arrival + max_wait_fraction * duration``.
        samples: Host-utilization sampling points spread evenly over the
            trace horizon (0 disables sampling).
    """

    slo_stretch: float = 1.5
    retry: bool = True
    retry_backoff_fraction: float = 0.05
    retry_backoff_growth: float = 2.0
    max_wait_fraction: float = 1.0
    samples: int = 32

    def __post_init__(self) -> None:
        if self.slo_stretch < 1.0:
            raise WorkloadError(
                f"slo_stretch must be >= 1, got {self.slo_stretch}"
            )
        if self.retry_backoff_fraction <= 0:
            raise WorkloadError(
                f"retry_backoff_fraction must be > 0, got "
                f"{self.retry_backoff_fraction}"
            )
        if self.retry_backoff_growth < 1.0:
            raise WorkloadError(
                f"retry_backoff_growth must be >= 1, got "
                f"{self.retry_backoff_growth}"
            )
        if self.samples < 0:
            raise WorkloadError(
                f"samples must be >= 0, got {self.samples}"
            )


def _stable_hash(text: str) -> int:
    return zlib.crc32(text.encode("utf-8"))


def task_intent(task: ClusterTask, sources: Sequence[str],
                sinks: Sequence[str]) -> PerformanceTarget:
    """The pipe intent one task replays as.

    Endpoints are a pure function of the task id (CRC32, not Python's
    randomized ``hash``), so the same trace maps to the same endpoint
    mix on every run and under every policy.
    """
    h = _stable_hash(task.task_id)
    return pipe(
        task.task_id,
        task.tenant_id,
        src=sources[h % len(sources)],
        dst=sinks[(h >> 8) % len(sinks)],
        bandwidth=task.bandwidth,
        bidirectional=task.bidirectional,
    )


def _summary(values: List[float]) -> Dict[str, float]:
    """p50/p90/p99/mean/max of *values* (zeros when empty)."""
    if not values:
        return {"mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
                "max": 0.0}
    return {
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
        "p99": percentile(values, 99),
        "max": max(values),
    }


@dataclass
class ReplayReport:
    """Outcome of replaying one trace under one policy on one fleet.

    Counters accumulate during the run; the derived figures (rates,
    percentile summaries) are computed at read time so the report object
    can be inspected mid-run by tests.

    Attributes:
        trace_name / trace_digest: Which load this was (the digest is
            SHA-256 over the trace's canonical JSON, so "byte-identical
            load" is checkable from two reports alone).
        policy / hosts / clock / max_attempts: The fleet configuration.
        config: The replay discipline used.
        submitted: Distinct tasks that arrived.
        admitted: Tasks eventually placed.
        rejected: Tasks whose waiting budget expired (final rejections).
        first_attempt_rejections: Arrivals bounced on first try (whether
            or not a retry later landed them).
        retries: Re-submission attempts performed.
        retries_exhausted: Final rejections that had retried at least
            once — the tasks whose waiting budget (not the fleet's first
            answer) killed them.  Distinguishes "the fleet was briefly
            full" from "the fleet said no immediately".
        sessions_shed: Admitted tasks lost mid-run because evacuation
            off a failed host exhausted its retries (only nonzero when a
            fault schedule is armed).
        released: Placements released on task completion.
        jcts: Per-admitted-task job completion times (release − arrival).
        waits: Per-admitted-task queueing delay (JCT − duration).
        slo_attained: Admitted tasks with ``JCT <= stretch * duration``.
        utilization_samples: Per-host ``reserved_peak`` fractions read at
            each sampling point.
        per_host_admitted: Admissions per host id (final landing host).
        host_events: Host engine events processed during the replay.
        trace_events: Replay-queue events processed (arrivals, retries,
            completions, samples).
        fault_summary: Fault-campaign counters (schedule size, injector
            and recovery counters) when a fault schedule was armed;
            ``None`` on clean runs.
    """

    trace_name: str
    trace_digest: str
    policy: str
    hosts: int
    clock: str
    max_attempts: Optional[int]
    config: ReplayConfig
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    first_attempt_rejections: int = 0
    retries: int = 0
    retries_exhausted: int = 0
    sessions_shed: int = 0
    released: int = 0
    jcts: List[float] = field(default_factory=list)
    waits: List[float] = field(default_factory=list)
    slo_attained: int = 0
    utilization_samples: List[float] = field(default_factory=list)
    per_host_admitted: Dict[str, int] = field(default_factory=dict)
    host_events: int = 0
    trace_events: int = 0
    fault_summary: Optional[Dict[str, object]] = None

    @property
    def rejection_rate(self) -> float:
        """Final rejections over submitted tasks."""
        return self.rejected / self.submitted if self.submitted else 0.0

    @property
    def availability(self) -> float:
        """Admitted sessions that were *not* lost to host failures.

        1.0 on clean runs; under a fault schedule this is the
        session-survival figure per policy (an admitted-then-shed task
        counts against it, a never-admitted one does not — that is what
        :attr:`rejection_rate` measures).
        """
        if not self.admitted:
            return 1.0
        return 1.0 - self.sessions_shed / self.admitted

    @property
    def slo_attainment(self) -> float:
        """Tasks meeting their SLO over *all* submitted tasks (a final
        rejection is an SLO miss, not a statistical no-show)."""
        return (self.slo_attained / self.submitted
                if self.submitted else 0.0)

    def jct_summary(self) -> Dict[str, float]:
        """JCT percentile summary over admitted tasks."""
        return _summary(self.jcts)

    def wait_summary(self) -> Dict[str, float]:
        """Queueing-delay percentile summary over admitted tasks."""
        return _summary(self.waits)

    def utilization_summary(self) -> Dict[str, float]:
        """Distribution of per-host peak reserved-link fractions."""
        return _summary(self.utilization_samples)

    def as_dict(self) -> Dict[str, object]:
        """Machine-readable form (what :meth:`to_json` serializes)."""
        return {
            "schema": REPORT_VERSION,
            "trace": {
                "schema": SCHEMA_VERSION,
                "name": self.trace_name,
                "digest": self.trace_digest,
            },
            "fleet": {
                "policy": self.policy,
                "hosts": self.hosts,
                "clock": self.clock,
                "max_attempts": self.max_attempts,
            },
            "replay": {
                "slo_stretch": self.config.slo_stretch,
                "retry": self.config.retry,
                "retry_backoff_fraction":
                    self.config.retry_backoff_fraction,
                "retry_backoff_growth": self.config.retry_backoff_growth,
                "max_wait_fraction": self.config.max_wait_fraction,
                "samples": self.config.samples,
            },
            "counts": {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "first_attempt_rejections": self.first_attempt_rejections,
                "retries": self.retries,
                "retries_exhausted": self.retries_exhausted,
                "sessions_shed": self.sessions_shed,
                "released": self.released,
                "host_events": self.host_events,
                "trace_events": self.trace_events,
            },
            "rejection_rate": self.rejection_rate,
            "availability": self.availability,
            "faults": self.fault_summary,
            "jct": self.jct_summary(),
            "wait": self.wait_summary(),
            "slo": {
                "stretch": self.config.slo_stretch,
                "attained": self.slo_attained,
                "attainment": self.slo_attainment,
            },
            "utilization": self.utilization_summary(),
            "per_host_admitted": dict(sorted(
                self.per_host_admitted.items())),
        }

    def to_json(self) -> str:
        """Canonical JSON of :meth:`as_dict` (includes run metadata)."""
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    def outcome_dict(self) -> Dict[str, object]:
        """The report minus run metadata: everything that must be
        *bit-identical* across clock disciplines.

        Only the clock's name is metadata — every count, percentile, and
        utilization sample is part of the event-clock-equals-lockstep
        contract (``host_events`` included: both disciplines execute
        exactly the events that are due, they differ only in who gets
        woken when nothing is).
        """
        d = self.as_dict()
        d["fleet"] = {k: v for k, v in d["fleet"].items()
                      if k != "clock"}
        return d

    def outcome_json(self) -> str:
        """Canonical JSON of :meth:`outcome_dict` — two replays are the
        same outcome iff these strings are equal (the cross-clock
        determinism suite compares them verbatim)."""
        return json.dumps(self.outcome_dict(), sort_keys=True,
                          separators=(",", ":"))

    def describe(self) -> str:
        """Human-readable run summary."""
        jct = self.jct_summary()
        util = self.utilization_summary()
        util95 = (percentile(self.utilization_samples, 95)
                  if self.utilization_samples else 0.0)
        lines = [
            f"replay {self.trace_name!r} on {self.hosts} hosts "
            f"(policy={self.policy}, clock={self.clock}): "
            f"{self.submitted} tasks, {self.admitted} admitted, "
            f"{self.rejected} rejected ({self.rejection_rate:.1%}), "
            f"{self.retries} retries",
            f"  JCT p50/p99: {jct['p50']:.4f}s / {jct['p99']:.4f}s "
            f"(mean {jct['mean']:.4f}s)",
            f"  SLO (<= {self.config.slo_stretch:g}x duration): "
            f"{self.slo_attainment:.1%} attained",
            f"  host reserved-peak p50/p95/max: "
            f"{util['p50']:.2f} / {util95:.2f} / {util['max']:.2f} "
            f"over {len(self.utilization_samples)} samples",
        ]
        if self.fault_summary is not None:
            injector = self.fault_summary.get("injector", {})
            recovery = self.fault_summary.get("recovery", {})
            lines.append(
                f"  faults: {injector.get('crashes', 0)} crashes, "
                f"{injector.get('degrades', 0)} degrades, "
                f"{injector.get('partitions', 0)} partitions; "
                f"{recovery.get('evacuated', 0)} evacuated, "
                f"{self.sessions_shed} shed -> "
                f"availability {self.availability:.2%}"
            )
        return "\n".join(lines)


def replay_trace(fleet, trace: ClusterTrace,
                 config: Optional[ReplayConfig] = None,
                 faults=None, recovery=None) -> ReplayReport:
    """Drive *fleet* through *trace*; return the scored report.

    The fleet advances to each event time under its own clock discipline
    (event-driven by default; lockstep produces the bit-identical
    report).  The replay queue is a heap, because retries are scheduled
    dynamically — but every entry is a pure function of the trace and
    the config, so the processing order is deterministic.

    Args:
        fleet: The fleet to drive.
        trace: The normalized trace to replay.
        config: Retry/SLO/sampling discipline.
        faults: Optional
            :class:`~repro.fleet.faults.FleetFaultSchedule`: hosts
            crash, degrade, and partition on that schedule while the
            trace replays, a
            :class:`~repro.fleet.recovery.FleetRecoveryController`
            evacuates (attached automatically unless *recovery* is
            given), and the report gains failure accounting
            (``sessions_shed``, ``availability``, the ``faults`` block).
            A shed task loses its SLO credit — it did not finish.
        recovery: Recovery controller override (knobs pre-tuned to the
            trace's timescale); only meaningful with *faults*.
    """
    config = config or ReplayConfig()
    injector = None
    if faults is not None:
        from ...fleet.faults import FleetFaultInjector
        from ...fleet.recovery import (
            FleetRecoveryConfig,
            FleetRecoveryController,
        )

        if recovery is None:
            recovery = FleetRecoveryController(
                fleet,
                FleetRecoveryConfig.for_horizon(max(trace.horizon, 1e-9)),
            )
        injector = FleetFaultInjector(fleet, faults, recovery=recovery)
    reference = fleet.reference_topology
    sources = sorted(
        d.device_id for t in (DeviceType.NIC, DeviceType.GPU)
        for d in reference.devices(t)
    )
    sinks = sorted(d.device_id for d in reference.devices(DeviceType.DIMM))
    if not sources or not sinks:
        raise FleetError(
            f"reference topology {reference.name!r} lacks NIC/GPU "
            f"sources or DIMM sinks for trace replay"
        )

    report = ReplayReport(
        trace_name=trace.name,
        trace_digest=hashlib.sha256(
            trace.to_json().encode("utf-8")).hexdigest(),
        policy=fleet.scheduler.policy.name,
        hosts=len(fleet),
        clock=fleet.clock.name,
        max_attempts=fleet.scheduler.max_attempts,
        config=config,
    )

    # (time, seq, kind, payload): seq breaks time ties deterministically
    # and in insertion order, mirroring the churn generator's sort key.
    queue: List[Tuple[float, int, int, object]] = []
    seq = 0
    for task in trace:
        heapq.heappush(queue, (task.arrival, seq, _ARRIVE, task))
        seq += 1
    horizon = trace.horizon
    if config.samples and horizon > 0:
        step = horizon / config.samples
        for i in range(1, config.samples + 1):
            heapq.heappush(queue, (i * step, seq, _SAMPLE, None))
            seq += 1

    # An admitted task's SLO is credited at admission (its completion
    # time is then fixed); if a host failure later sheds the session,
    # the credit is taken back here — a shed task did not finish.
    attained_ids: set = set()
    if injector is not None:
        def on_shed(intent) -> None:
            report.sessions_shed += 1
            if intent.intent_id in attained_ids:
                attained_ids.discard(intent.intent_id)
                report.slo_attained -= 1

        recovery.on_shed(on_shed)

    advance = injector.advance_to if injector is not None \
        else fleet.advance_to

    def attempt(task: ClusterTask, now: float, attempt_no: int) -> None:
        nonlocal seq
        placed = fleet.try_submit(task_intent(task, sources, sinks))
        if placed is not None:
            report.admitted += 1
            report.per_host_admitted[placed.host_id] = (
                report.per_host_admitted.get(placed.host_id, 0) + 1)
            completion = now + task.duration
            heapq.heappush(queue, (completion, seq, _COMPLETE, task))
            seq += 1
            jct = completion - task.arrival
            report.jcts.append(jct)
            report.waits.append(now - task.arrival)
            if jct <= config.slo_stretch * task.duration + 1e-12:
                report.slo_attained += 1
                attained_ids.add(task.task_id)
            return
        if attempt_no == 0:
            report.first_attempt_rejections += 1
        backoff = (task.duration * config.retry_backoff_fraction
                   * config.retry_backoff_growth ** attempt_no)
        next_try = now + backoff
        deadline = task.arrival + config.max_wait_fraction * task.duration
        if not config.retry or next_try > deadline:
            report.rejected += 1
            if attempt_no > 0:
                report.retries_exhausted += 1
            return
        heapq.heappush(queue, (next_try, seq, _RETRY,
                               (task, attempt_no + 1)))
        seq += 1

    while queue:
        time, _seq, kind, payload = heapq.heappop(queue)
        report.host_events += advance(time)
        report.trace_events += 1
        if kind == _ARRIVE:
            report.submitted += 1
            attempt(payload, time, 0)
        elif kind == _RETRY:
            task, attempt_no = payload
            report.retries += 1
            attempt(task, time, attempt_no)
        elif kind == _COMPLETE:
            task = payload
            if fleet.scheduler.has_intent(task.task_id):
                fleet.release(task.task_id)
                report.released += 1
            elif (injector is not None
                    and recovery.cancel(task.task_id)):
                pass  # done mid-evacuation: stop retrying it
        else:  # _SAMPLE
            for summary in fleet.telemetry.headrooms():
                report.utilization_samples.append(summary.reserved_peak)
    if injector is not None:
        # Run past the last repair so every fault heals and every retry
        # resolves; the counters below are then final.
        end = max(trace.horizon, faults.end_time)
        if end > fleet.now:
            report.host_events += injector.advance_to(end)
        report.fault_summary = {
            "schedule_seed": faults.seed,
            "schedule_events": len(faults),
            "injector": injector.counters(),
            "recovery": recovery.counters(),
        }
    return report


@dataclass
class PolicyComparison:
    """Per-policy replay reports over byte-identical load.

    Attributes:
        trace_name / trace_digest: The shared load (every report's
            digest is asserted equal at construction).
        reports: Policy name → its :class:`ReplayReport`, insertion
            order preserved.
    """

    trace_name: str
    trace_digest: str
    reports: Dict[str, ReplayReport]

    def __post_init__(self) -> None:
        for name, report in self.reports.items():
            if report.trace_digest != self.trace_digest:
                raise WorkloadError(
                    f"policy {name!r} was scored on a different trace "
                    f"({report.trace_digest[:12]} != "
                    f"{self.trace_digest[:12]}); comparisons must share "
                    f"byte-identical load"
                )

    def as_dict(self) -> Dict[str, object]:
        """Machine-readable comparison (one report dict per policy)."""
        return {
            "schema": REPORT_VERSION,
            "trace": {"name": self.trace_name,
                      "digest": self.trace_digest},
            "policies": {name: report.as_dict()
                         for name, report in self.reports.items()},
        }

    def to_json(self) -> str:
        """Canonical JSON form of :meth:`as_dict`."""
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    def describe(self) -> str:
        """The comparison table: one row per policy (an availability
        column appears when a fault schedule was armed)."""
        faulted = any(r.fault_summary is not None
                      for r in self.reports.values())
        header = (f"{'policy':<12} {'reject':>8} {'JCT p50':>10} "
                  f"{'JCT p99':>10} {'SLO':>8} {'util p95':>9}")
        if faulted:
            header += f" {'shed':>6} {'avail':>8}"
        lines = [f"policy comparison on {self.trace_name!r} "
                 f"(trace digest {self.trace_digest[:12]}):", header,
                 "-" * len(header)]
        for name, report in self.reports.items():
            jct = report.jct_summary()
            util95 = (percentile(report.utilization_samples, 95)
                      if report.utilization_samples else 0.0)
            row = (
                f"{name:<12} {report.rejection_rate:>7.1%} "
                f"{jct['p50']:>9.4f}s {jct['p99']:>9.4f}s "
                f"{report.slo_attainment:>7.1%} {util95:>9.2f}"
            )
            if faulted:
                row += (f" {report.sessions_shed:>6} "
                        f"{report.availability:>7.1%}")
            lines.append(row)
        return "\n".join(lines)


def compare_policies(
    trace: ClusterTrace,
    policies: Sequence[str] = ("first-fit", "best-fit", "spread"),
    *,
    topology: Union[str, object] = "cascade_lake_2s",
    hosts: int = 16,
    clock: str = "event",
    max_attempts: Optional[int] = 8,
    config: Optional[ReplayConfig] = None,
    faults=None,
    **fleet_kwargs,
) -> PolicyComparison:
    """Replay *trace* once per policy on fresh, identical fleets.

    Every policy sees byte-identical load (same trace object), the same
    replay discipline, and a fleet built from the same arguments — the
    only degree of freedom is the ranking function, so the table is a
    pure policy comparison.  With *faults* (a
    :class:`~repro.fleet.faults.FleetFaultSchedule`) every policy also
    endures the identical storm, so the table becomes an
    SLO-under-failure / availability comparison.
    """
    from ...fleet import Fleet

    config = config or ReplayConfig()
    reports: Dict[str, ReplayReport] = {}
    for policy in policies:
        fleet = Fleet(topology, hosts=hosts, policy=policy, clock=clock,
                      max_attempts=max_attempts, **fleet_kwargs)
        try:
            report = replay_trace(fleet, trace, config, faults=faults)
        finally:
            fleet.shutdown()
        reports[report.policy] = report
    digest = next(iter(reports.values())).trace_digest if reports else ""
    return PolicyComparison(trace_name=trace.name, trace_digest=digest,
                            reports=reports)
