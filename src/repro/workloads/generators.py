"""Arrival-process generators for open- and closed-loop workloads.

Generators schedule callbacks on the engine; applications plug a "fire one
operation" callback in.  Open-loop (Poisson/uniform) generators model
external request arrival; the closed-loop generator models a pipeline that
keeps a fixed number of operations in flight (ML training iterations,
storage scans).
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..errors import WorkloadError
from ..sim.engine import Engine


class OpenLoopGenerator:
    """Fires ``on_arrival`` according to an inter-arrival distribution.

    Args:
        engine: The simulation engine.
        on_arrival: Callback fired once per arrival.
        rate: Mean arrivals per second.
        rng: Seeded random source; ``None`` makes arrivals deterministic
            (exactly periodic at ``1/rate``).
        process: ``"poisson"`` (exponential gaps) or ``"uniform"``
            (gaps uniform in [0.5, 1.5] x mean).
    """

    def __init__(
        self,
        engine: Engine,
        on_arrival: Callable[[], None],
        rate: float,
        rng: Optional[random.Random] = None,
        process: str = "poisson",
    ) -> None:
        if rate <= 0:
            raise WorkloadError(f"arrival rate must be > 0, got {rate}")
        if process not in ("poisson", "uniform"):
            raise WorkloadError(f"unknown arrival process {process!r}")
        if process == "poisson" and rng is None:
            process = "periodic"
        self._engine = engine
        self._on_arrival = on_arrival
        self._rate = rate
        self._rng = rng
        self._process = process
        self._running = False
        self.arrivals = 0

    @property
    def rate(self) -> float:
        """Current mean arrival rate (arrivals/second)."""
        return self._rate

    def set_rate(self, rate: float) -> None:
        """Change the arrival rate, effective from the next gap."""
        if rate <= 0:
            raise WorkloadError(f"arrival rate must be > 0, got {rate}")
        self._rate = rate

    def _gap(self) -> float:
        mean_gap = 1.0 / self._rate
        if self._process == "poisson":
            return self._rng.expovariate(self._rate)
        if self._process == "uniform":
            jitter = self._rng.uniform(0.5, 1.5) if self._rng else 1.0
            return mean_gap * jitter
        return mean_gap  # periodic

    def start(self) -> None:
        """Begin generating arrivals (idempotent)."""
        if self._running:
            return
        self._running = True
        self._engine.schedule_in(self._gap(), self._fire, label="arrival")

    def stop(self) -> None:
        """Stop after the currently scheduled arrival (if any) is skipped."""
        self._running = False

    def _fire(self) -> None:
        if not self._running:
            return
        self.arrivals += 1
        self._on_arrival()
        self._engine.schedule_in(self._gap(), self._fire, label="arrival")


class ClosedLoopGenerator:
    """Keeps *concurrency* operations in flight.

    The application calls :meth:`operation_done` when one finishes; the
    generator immediately (plus optional think time) launches the next.
    """

    def __init__(
        self,
        engine: Engine,
        launch: Callable[[], None],
        concurrency: int = 1,
        think_time: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if concurrency < 1:
            raise WorkloadError(f"concurrency must be >= 1, got {concurrency}")
        if think_time < 0:
            raise WorkloadError("think_time must be >= 0")
        self._engine = engine
        self._launch = launch
        self._concurrency = concurrency
        self._think_time = think_time
        self._rng = rng
        self._running = False
        self.launched = 0
        self.completed = 0

    @property
    def in_flight(self) -> int:
        """Operations currently outstanding."""
        return self.launched - self.completed

    def start(self) -> None:
        """Launch the initial window of operations."""
        if self._running:
            return
        self._running = True
        for _ in range(self._concurrency):
            self._launch_one()

    def stop(self) -> None:
        """Stop launching; in-flight operations drain naturally."""
        self._running = False

    def operation_done(self) -> None:
        """Signal one completed operation; replenishes the window."""
        self.completed += 1
        if not self._running:
            return
        if self._think_time > 0:
            gap = self._think_time
            if self._rng is not None:
                gap = self._rng.expovariate(1.0 / self._think_time)
            self._engine.schedule_in(gap, self._launch_one, label="think")
        else:
            self._launch_one()

    def _launch_one(self) -> None:
        if not self._running:
            return
        self.launched += 1
        self._launch()
