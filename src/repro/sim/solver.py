"""Stateful, incremental weighted max-min fair solver.

The stateless :func:`~repro.sim.bandwidth.max_min_fair_rates` re-solves the
whole host from scratch on every call, which makes fabric churn
O(rounds x flows x constraints) per flow event.  This module keeps the
problem *resident*: the solver owns the current flow set, physical
capacities, and virtual constraints, and a mutation only invalidates the
connected component of the flow/constraint bipartite graph it touches.

Key properties:

* **Component partitioning.**  Two flows interact (directly or
  transitively) only if they share a constraint.  The weighted max-min
  allocation of a disconnected component is independent of every other
  component, so cached rates of untouched components are reused verbatim.
* **Epoch-keyed caching.**  Every mutation bumps an epoch counter and
  stamps the constraints/flows it touched.  ``solve()`` re-solves exactly
  the components containing something stamped after the last solve epoch;
  a clean solver returns its cached rates without any work.
* **Two water-filling cores, one algorithm.**  Every solve runs progressive
  filling; *which* core depends on component size.  Components at or above
  :data:`~repro.sim.arrays.DEFAULT_ARRAY_CROSSOVER` flows run the
  numpy-vectorized :mod:`repro.sim.arrays` core against the resident
  :class:`~repro.sim.arrays.InternedProblem` (stable integer slots, dense
  vectors, pre-interned incidence — maintained by the mutation API, never
  rebuilt per solve); smaller components run the scalar reference core,
  whose per-solve constant costs are lower.  The paths agree within
  floating-point accumulation order (1e-6, enforced by the seeded property
  suite in ``tests/test_sim_arrays.py``), and
  :attr:`SolverStats.scalar_fills` / :attr:`SolverStats.array_fills`
  report which path each solve took.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..trace.recorder import TRACER
from .arrays import (
    DEFAULT_ARRAY_CROSSOVER,
    HAVE_NUMPY,
    make_interned_problem,
    progressive_fill_array,
)
from .bandwidth import (
    Constraint,
    FlowDemand,
    build_problem,
    progressive_fill,
)


@dataclass
class SolverStats:
    """Observable cost counters (the benchmarks' and tests' hook).

    Attributes:
        solve_calls: Total ``solve()`` invocations.
        noop_solves: Calls that returned the cache untouched (nothing dirty).
        full_solves: From-scratch joint solves over every flow.
        incremental_solves: Calls that re-solved only dirty components.
        component_solves: Individual component sub-solves executed.
        flows_resolved: Flow rates recomputed across all solves.
        flows_reused: Flow rates served from the component cache.
        scalar_fills: Water-filling runs taken by the scalar core.
        array_fills: Water-filling runs taken by the vectorized core.
    """

    solve_calls: int = 0
    noop_solves: int = 0
    full_solves: int = 0
    incremental_solves: int = 0
    component_solves: int = 0
    flows_resolved: int = 0
    flows_reused: int = 0
    scalar_fills: int = 0
    array_fills: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


class IncrementalMaxMinSolver:
    """Resident weighted max-min fair allocation with component caching.

    Mutations (:meth:`set_flow`, :meth:`remove_flow`, :meth:`set_capacity`,
    :meth:`set_constraint`, :meth:`remove_constraint`) are cheap and only
    mark state dirty; :meth:`solve` re-solves the dirty components and
    returns the full rate map.  All mutation methods are idempotent-cheap:
    writing a value identical to the current one does not dirty anything,
    so a periodic controller re-applying an unchanged schedule costs no
    re-solve ("arbiter periods reuse unchanged components").

    Args:
        array_crossover: Component size (flow count) at which solves switch
            from the scalar core to the vectorized :mod:`repro.sim.arrays`
            core.  ``None`` uses the measured default; ``0`` forces the
            array path everywhere (tests), a very large value forces the
            scalar path.  Ignored when numpy is unavailable.
    """

    def __init__(self, array_crossover: Optional[int] = None) -> None:
        self.array_crossover = (DEFAULT_ARRAY_CROSSOVER
                                if array_crossover is None
                                else array_crossover)
        self._interned = make_interned_problem()
        self._flows: Dict[str, FlowDemand] = {}
        self._flow_order: Dict[str, int] = {}
        self._order_seq = itertools.count()
        self._capacities: Dict[str, float] = {}
        self._virtual: Dict[str, Constraint] = {}

        # Adjacency (connectivity only; multiplicity is rebuilt per solve
        # from the authoritative FlowDemand.links tuples).
        self._members: Dict[str, Set[str]] = {}
        self._flow_cids: Dict[str, Set[str]] = {}
        # Virtual-constraint membership index including not-yet-added flows,
        # so a flow added after its constraint still binds (matching the
        # stateless function's solve-time membership semantics).
        self._virtual_by_flow: Dict[str, Set[str]] = {}

        # Epoch-keyed dirtiness: every mutation bumps _epoch and stamps the
        # flows/constraints it touched; anything stamped after
        # _solved_epoch is dirty.
        self._epoch = 0
        self._solved_epoch = 0
        self._touched_flows: Dict[str, int] = {}
        self._touched_cids: Dict[str, int] = {}
        self._loaded_clean = True  # nothing ever solved -> full solve first

        self._rates: Dict[str, float] = {}
        self.stats = SolverStats()

    # -- class-level from-scratch entry point -------------------------------

    @staticmethod
    def solve_once(
        flows: Sequence[FlowDemand],
        capacities: Mapping[str, float],
        extra_constraints: Iterable[Constraint] = (),
    ) -> Dict[str, float]:
        """One stateless from-scratch solve (what ``max_min_fair_rates``
        delegates to).  Runs the same progressive filling the stateless
        function always ran; instances of
        :data:`~repro.sim.arrays.DEFAULT_ARRAY_CROSSOVER` flows or more
        take the vectorized core (equivalent within fp accumulation
        order), smaller ones the scalar reference core."""
        if not flows:
            return {}
        members, caps = build_problem(flows, capacities, extra_constraints)
        if HAVE_NUMPY and len(flows) >= DEFAULT_ARRAY_CROSSOVER:
            rates = progressive_fill_array(flows, members, caps)
        else:
            rates = progressive_fill(flows, members, caps)
        return {f.flow_id: rates[i] for i, f in enumerate(flows)}

    # -- mutation API --------------------------------------------------------

    def set_capacity(self, constraint_id: str, capacity: float) -> None:
        """Register or update a physical constraint's capacity (bytes/s)."""
        if capacity < 0:
            raise ValueError(
                f"constraint {constraint_id!r}: capacity must be >= 0"
            )
        if constraint_id in self._virtual:
            raise ValueError(
                f"constraint id {constraint_id!r} collides with a virtual "
                f"constraint"
            )
        previous = self._capacities.get(constraint_id)
        value = float(capacity)
        if previous == value:
            return
        self._capacities[constraint_id] = value
        self._interned.set_capacity(constraint_id, value)
        if previous is not None:
            self._touch_constraint(constraint_id)

    def remove_capacity(self, constraint_id: str) -> None:
        """Forget a physical constraint.  It must be unused by every flow."""
        if self._members.get(constraint_id):
            raise ValueError(
                f"constraint {constraint_id!r} still crossed by flows"
            )
        if self._capacities.pop(constraint_id, None) is not None:
            self._members.pop(constraint_id, None)
            self._interned.remove_capacity(constraint_id)
            self._touch_constraint(constraint_id)

    def set_flow(self, flow: FlowDemand) -> None:
        """Add *flow* or replace the flow with the same id."""
        for link_id in flow.links:
            if link_id not in self._capacities:
                raise KeyError(f"flow {flow.flow_id!r} references unknown "
                               f"constraint {link_id!r}")
        fid = flow.flow_id
        existing = self._flows.get(fid)
        if existing is not None:
            if (existing.links == flow.links
                    and existing.demand == flow.demand
                    and existing.weight == flow.weight):
                return
            if existing.links != flow.links:
                self._unlink_flow(fid, existing)
                self._link_flow(fid, flow)
                self._interned.set_flow(fid, flow.links,
                                        flow.demand, flow.weight)
            else:
                self._touch_flow(fid)
                self._interned.set_flow_params(fid, flow.demand, flow.weight)
        else:
            self._flow_order[fid] = next(self._order_seq)
            self._link_flow(fid, flow)
            self._interned.set_flow(fid, flow.links, flow.demand, flow.weight)
        self._flows[fid] = flow

    def set_flow_params(self, flow_id: str,
                        demand: Optional[float] = None,
                        weight: Optional[float] = None) -> None:
        """Update a resident flow's demand and/or weight in place.

        Cheaper than :meth:`set_flow` for the refresh-scan hot path: no
        :class:`FlowDemand` is constructed unless something changed.
        """
        current = self._flows[flow_id]
        new_demand = current.demand if demand is None else demand
        new_weight = current.weight if weight is None else weight
        if new_demand == current.demand and new_weight == current.weight:
            return
        self._flows[flow_id] = FlowDemand(
            flow_id=flow_id, links=current.links,
            demand=new_demand, weight=new_weight,
        )
        self._interned.set_flow_params(flow_id, new_demand, new_weight)
        self._touch_flow(flow_id)

    def remove_flow(self, flow_id: str) -> None:
        """Deactivate a flow; its former neighbours are re-solved next."""
        flow = self._flows.pop(flow_id, None)
        if flow is None:
            raise KeyError(f"flow not present: {flow_id!r}")
        self._unlink_flow(flow_id, flow)
        self._flow_order.pop(flow_id, None)
        self._rates.pop(flow_id, None)
        self._interned.remove_flow(flow_id)
        self._touched_flows.pop(flow_id, None)

    def set_constraint(self, constraint: Constraint) -> None:
        """Install or update a virtual constraint (e.g. a tenant cap)."""
        cid = constraint.constraint_id
        if constraint.member_flows is None:
            raise ValueError(
                f"virtual constraint {cid!r} must declare member_flows"
            )
        if cid in self._capacities:
            raise ValueError(f"constraint id {cid!r} collides with a link id")
        existing = self._virtual.get(cid)
        if (existing is not None
                and existing.capacity == constraint.capacity
                and existing.member_flows == constraint.member_flows):
            return
        if existing is not None:
            # Flows leaving the membership must re-solve too: stamp the old
            # bound set before the adjacency forgets it.
            for fid in self._members.get(cid, set()):
                self._touch_flow(fid)
            self._unlink_virtual(cid, existing)
        self._virtual[cid] = constraint
        self._link_virtual(cid, constraint)
        self._interned.set_constraint_capacity(cid, float(constraint.capacity))
        self._touch_constraint(cid)

    def remove_constraint(self, constraint_id: str) -> None:
        """Remove a virtual constraint (no-op if absent)."""
        constraint = self._virtual.pop(constraint_id, None)
        if constraint is None:
            return
        for fid in self._members.get(constraint_id, set()):
            self._touch_flow(fid)
        self._unlink_virtual(constraint_id, constraint)
        self._interned.remove_constraint(constraint_id)
        self._touched_cids.pop(constraint_id, None)

    # -- queries -------------------------------------------------------------

    def flow_count(self) -> int:
        """Number of resident flows."""
        return len(self._flows)

    def has_flow(self, flow_id: str) -> bool:
        """Whether *flow_id* is resident."""
        return flow_id in self._flows

    def flow(self, flow_id: str) -> FlowDemand:
        """The resident :class:`FlowDemand` for *flow_id*."""
        return self._flows[flow_id]

    def rate(self, flow_id: str) -> float:
        """Last solved rate of *flow_id* (0.0 if never solved)."""
        return self._rates.get(flow_id, 0.0)

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter (bumped once per effective change)."""
        return self._epoch

    def is_dirty(self) -> bool:
        """Whether the next :meth:`solve` has work to do."""
        return (self._loaded_clean and bool(self._flows)) or bool(
            self._touched_flows or self._touched_cids
        )

    # -- solving -------------------------------------------------------------

    def solve(self) -> Dict[str, float]:
        """Return the rate map, re-solving only what a mutation touched.

        The returned dict is a snapshot owned by the caller.
        """
        self.stats.solve_calls += 1
        if not TRACER.enabled:
            return self._solve_untracked()
        with TRACER.span("solver", "solve", {
            "flows": len(self._flows),
            "dirty_flows": len(self._touched_flows),
            "dirty_constraints": len(self._touched_cids),
        }):
            before = (self.stats.noop_solves, self.stats.full_solves,
                      self.stats.component_solves, self.stats.flows_resolved,
                      self.stats.scalar_fills, self.stats.array_fills)
            rates = self._solve_untracked()
            if self.stats.noop_solves > before[0]:
                TRACER.annotate(kind="noop")
            else:
                scalar = self.stats.scalar_fills - before[4]
                vector = self.stats.array_fills - before[5]
                TRACER.annotate(
                    kind=("full" if self.stats.full_solves > before[1]
                          else "incremental"),
                    components=self.stats.component_solves - before[2],
                    flows_resolved=self.stats.flows_resolved - before[3],
                    fill=("mixed" if scalar and vector
                          else "array" if vector
                          else "scalar" if scalar else "none"),
                )
            return rates

    def _solve_untracked(self) -> Dict[str, float]:
        if self._loaded_clean:
            self._full_solve()
            self._loaded_clean = False
        elif self._touched_flows or self._touched_cids:
            self._incremental_solve()
        else:
            self.stats.noop_solves += 1
        self._solved_epoch = self._epoch
        self._touched_flows.clear()
        self._touched_cids.clear()
        return dict(self._rates)

    def _use_array(self, n_flows: int) -> bool:
        return HAVE_NUMPY and n_flows >= self.array_crossover

    def _virtual_edges(self) -> List[Tuple[str, List[str]]]:
        """Every virtual constraint's resident membership (array gather)."""
        edges = []
        for cid in self._virtual:
            bound = self._members.get(cid)
            if bound:
                edges.append((cid, list(bound)))
        return edges

    def _full_solve(self) -> None:
        flows = list(self._flows.values())
        if self._use_array(len(flows)):
            fids = [f.flow_id for f in flows]
            rates = self._interned.solve(fids, self._virtual_edges(),
                                         full=True)
            self._rates = dict(zip(fids, rates))
            self.stats.array_fills += 1
        elif flows:
            # Runs the scalar core directly (not solve_once, which applies
            # the module-default crossover) so the instance's
            # array_crossover is authoritative — tests force a path with it.
            members, caps = build_problem(flows, self._capacities,
                                          self._virtual.values())
            rates = progressive_fill(flows, members, caps)
            self._rates = {f.flow_id: rates[i] for i, f in enumerate(flows)}
            self._interned.store_rates(self._rates.keys(),
                                       self._rates.values())
            self.stats.scalar_fills += 1
        else:
            self._rates = {}
        self.stats.full_solves += 1
        self.stats.flows_resolved += len(flows)

    def _incremental_solve(self) -> None:
        components = self._dirty_components()
        affected = sum(len(component) for component in components)
        self.stats.incremental_solves += 1
        self.stats.flows_reused += len(self._flows) - affected
        for component in components:
            self._solve_component(component)
            self.stats.component_solves += 1
            self.stats.flows_resolved += len(component)

    def _dirty_components(self) -> List[List[str]]:
        """Connected components of the dirty region, in one adjacency pass.

        Expands the transitive closure of the touched flows/constraints and
        partitions it into components simultaneously: each unseen seed
        grows its whole component before the next seed is considered, so
        the adjacency is walked exactly once.  Components come out in
        seed-discovery order with flows insertion-ordered inside each.
        """
        seeds: List[str] = [
            fid for fid in self._touched_flows if fid in self._flows
        ]
        for cid in self._touched_cids:
            seeds.extend(self._members.get(cid, ()))
        components: List[List[str]] = []
        seen: Set[str] = set()
        for seed in seeds:
            if seed in seen:
                continue
            component: Set[str] = set()
            stack = [seed]
            while stack:
                fid = stack.pop()
                if fid in component:
                    continue
                component.add(fid)
                for cid in self._flow_cids.get(fid, ()):
                    for neighbour in self._members.get(cid, ()):
                        if neighbour not in component:
                            stack.append(neighbour)
            seen |= component
            components.append(
                sorted(component, key=self._flow_order.__getitem__)
            )
        return components

    def _solve_component(self, component: List[str]) -> None:
        """Re-solve one component, picking the core by component size."""
        if self._use_array(len(component)):
            component_set = set(component)
            virtual_edges = []
            for cid in self._virtual:
                bound = self._members.get(cid)
                if bound:
                    inside = bound & component_set
                    if inside:
                        virtual_edges.append((cid, list(inside)))
            rates = self._interned.solve(component, virtual_edges)
            for fid, rate in zip(component, rates):
                self._rates[fid] = rate
            self.stats.array_fills += 1
            return
        flows = [self._flows[fid] for fid in component]
        # Inline problem build: resident flows were validated at set_flow
        # time, so this skips build_problem's unknown-constraint checks and
        # flow-index dict on the hot churn path.
        members: Dict[str, List[int]] = {}
        for i, flow in enumerate(flows):
            for cid in flow.links:
                bucket = members.get(cid)
                if bucket is None:
                    members[cid] = [i]
                else:
                    bucket.append(i)
        caps = {cid: self._capacities[cid] for cid in members}
        if self._virtual:
            component_set = set(component)
            index = {fid: i for i, fid in enumerate(component)}
            for cid, constraint in self._virtual.items():
                inside = self._members.get(cid, set()) & component_set
                if inside:
                    members[cid] = [index[fid] for fid in inside]
                    caps[cid] = float(constraint.capacity)
        rates = progressive_fill(flows, members, caps)
        for i, f in enumerate(flows):
            self._rates[f.flow_id] = rates[i]
        self._interned.store_rates(component, rates)
        self.stats.scalar_fills += 1

    # -- bulk reads ----------------------------------------------------------

    def constraint_usage(self) -> Dict[str, float]:
        """Rate currently crossing each constraint (multiplicity-weighted).

        Covers physical and virtual constraints that have at least one
        resident member flow; everything else is implicitly 0.  With numpy
        this is one segment-sum over the cached full incidence — the bulk
        utilization queries in :class:`~repro.sim.network.FabricNetwork`
        read straight from the interned arrays instead of re-walking every
        flow's hop list in Python.
        """
        if HAVE_NUMPY and self._flows:
            return self._interned.constraint_usage(
                list(self._flows), self._virtual_edges()
            )
        usage: Dict[str, float] = {}
        for fid, flow in self._flows.items():
            rate = self._rates.get(fid, 0.0)
            for cid in flow.links:
                usage[cid] = usage.get(cid, 0.0) + rate
        for cid in self._virtual:
            for fid in self._members.get(cid, ()):
                usage[cid] = usage.get(cid, 0.0) + self._rates.get(fid, 0.0)
        return usage

    # -- internal bookkeeping ------------------------------------------------

    def _touch_flow(self, flow_id: str) -> None:
        self._epoch += 1
        self._touched_flows[flow_id] = self._epoch

    def _touch_constraint(self, cid: str) -> None:
        self._epoch += 1
        self._touched_cids[cid] = self._epoch

    def _link_flow(self, fid: str, flow: FlowDemand) -> None:
        cids = set(flow.links)
        cids |= self._virtual_by_flow.get(fid, set())
        self._flow_cids[fid] = cids
        for cid in cids:
            self._members.setdefault(cid, set()).add(fid)
        self._touch_flow(fid)

    def _unlink_flow(self, fid: str, flow: FlowDemand) -> None:
        # Dirty the constraints the flow sat on so its former neighbours
        # reclaim the capacity it held.
        for cid in self._flow_cids.pop(fid, set()):
            bucket = self._members.get(cid)
            if bucket is not None:
                bucket.discard(fid)
                if not bucket:
                    del self._members[cid]
            self._touch_constraint(cid)

    def _link_virtual(self, cid: str, constraint: Constraint) -> None:
        for fid in constraint.member_flows or ():
            self._virtual_by_flow.setdefault(fid, set()).add(cid)
            if fid in self._flows:
                self._flow_cids[fid].add(cid)
                self._members.setdefault(cid, set()).add(fid)

    def _unlink_virtual(self, cid: str, constraint: Constraint) -> None:
        for fid in constraint.member_flows or ():
            bucket = self._virtual_by_flow.get(fid)
            if bucket is not None:
                bucket.discard(cid)
                if not bucket:
                    del self._virtual_by_flow[fid]
            if fid in self._flows:
                self._flow_cids[fid].discard(cid)
        self._members.pop(cid, None)
