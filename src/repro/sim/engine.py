"""The discrete-event simulation engine.

A classic heapq event loop over :class:`~repro.sim.clock.SimClock`.  The
engine is deliberately minimal: everything else (flows, telemetry,
heartbeats, arbitration) is built by scheduling callbacks on it.

Determinism guarantees:

* events at equal times fire in scheduling order (tie-broken by a sequence
  number);
* the engine is single-threaded;
* no component of the library reads the wall clock.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from ..errors import ClockError, SimulationError
from ..trace.recorder import TRACER
from .clock import SimClock
from .events import Event


class Engine:
    """Single-threaded discrete-event engine."""

    #: Queues below this size are never compacted: scanning a handful of
    #: entries at pop time is cheaper than rebuilding the heap.
    _COMPACT_MIN = 64

    def __init__(self, start: float = 0.0) -> None:
        self.clock = SimClock(start)
        self._queue: List[Event] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False
        # Live-event accounting: cancelled-but-still-queued entries, kept
        # exact by push/pop/cancel, so pending_events() is O(1) and the
        # heap can be compacted when cancellations dominate it.
        self._cancelled_in_queue = 0
        self._compactions = 0

    # -- scheduling ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks fired so far."""
        return self._events_processed

    def schedule_at(self, t: float, callback: Callable[[], None],
                    label: str = "") -> Event:
        """Schedule *callback* at absolute time *t* (>= now)."""
        if t < self.now:
            raise ClockError(
                f"cannot schedule at {t} (now is {self.now})"
            )
        event = Event(time=t, seq=self._seq, callback=callback, label=label,
                      queued=True, _engine=self)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None],
                    label: str = "") -> Event:
        """Schedule *callback* after *delay* seconds (>= 0)."""
        if delay < 0:
            raise ClockError(f"cannot schedule with negative delay {delay}")
        return self.schedule_at(self.now + delay, callback, label=label)

    def schedule_now(self, callback: Callable[[], None],
                     label: str = "") -> Event:
        """Schedule *callback* at the current timestamp.

        It fires after every event already queued at this instant —
        the coalescing primitive: same-instant work is deferred to the end
        of the timestamp without advancing simulated time.
        """
        return self.schedule_at(self.now, callback, label=label)

    def schedule_every(
        self,
        period: float,
        callback: Callable[[], None],
        label: str = "",
        first_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng=None,
    ) -> "PeriodicTask":
        """Run *callback* every *period* seconds until cancelled.

        ``jitter`` adds uniform ±jitter/2 noise to each period (requires
        *rng*, a ``random.Random``-like object).  Returns a
        :class:`PeriodicTask` handle with a ``cancel()`` method.
        """
        if period <= 0:
            raise SimulationError(f"period must be > 0, got {period}")
        if jitter < 0 or (jitter > 0 and rng is None):
            raise SimulationError("jitter requires a non-negative value and an rng")
        task = PeriodicTask(self, period, callback, label, jitter, rng)
        delay = period if first_delay is None else first_delay
        task._arm(delay)
        return task

    # -- execution -----------------------------------------------------------

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._cancelled_in_queue -= 1
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Process one event; returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            event.queued = False
            self.clock.advance_to(event.time)
            self._events_processed += 1
            if TRACER.enabled:
                self._dispatch_traced(event)
            else:
                event.callback()
            return True
        return False

    def _dispatch_traced(self, event: Event) -> None:
        """Dispatch one event under a span plus a queue-depth sample."""
        TRACER.begin("engine", event.label or "event", {"t": event.time})
        try:
            event.callback()
        finally:
            TRACER.end()
            TRACER.counter("engine", "engine.queue_depth", len(self._queue))

    def run_until(self, t: float, max_events: Optional[int] = None) -> int:
        """Process events up to and including time *t*; advance clock to *t*.

        Returns the number of events processed.  ``max_events`` is a safety
        valve against runaway event storms in tests.
        """
        if t < self.now:
            raise ClockError(f"cannot run until {t} (now is {self.now})")
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        processed = 0
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None or next_time > t:
                    break
                self.step()
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"run_until({t}) exceeded max_events={max_events}"
                    )
            self.clock.advance_to(t)
        finally:
            self._running = False
        return processed

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the event queue completely (bounded by *max_events*)."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        processed = 0
        try:
            while self.step():
                processed += 1
                if processed >= max_events:
                    raise SimulationError(f"run() exceeded max_events={max_events}")
        finally:
            self._running = False
        return processed

    def pending_events(self) -> int:
        """Number of non-cancelled events still queued (O(1)).

        Maintained as a live counter — pushes increment, pops and cancels
        decrement — instead of the historical full-queue scan, so periodic
        health checks can poll it without a per-call O(n) cost.
        """
        return len(self._queue) - self._cancelled_in_queue

    def _note_cancelled(self, event: Event) -> None:
        """A queued event was cancelled: update accounting, maybe compact.

        When cancelled entries exceed half the queue the heap is rebuilt
        without them, bounding queue memory under heavy
        :class:`PeriodicTask` churn (each rescheduling cancel leaves a
        tombstone behind otherwise).
        """
        self._cancelled_in_queue += 1
        if (2 * self._cancelled_in_queue > len(self._queue)
                and len(self._queue) >= self._COMPACT_MIN):
            self._queue = [e for e in self._queue if not e.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_in_queue = 0
            self._compactions += 1


class PeriodicTask:
    """Handle for a repeating callback created by :meth:`Engine.schedule_every`."""

    def __init__(self, engine: Engine, period: float,
                 callback: Callable[[], None], label: str,
                 jitter: float, rng) -> None:
        self._engine = engine
        self._period = period
        self._callback = callback
        self._label = label
        self._jitter = jitter
        self._rng = rng
        self._event: Optional[Event] = None
        self._cancelled = False
        self.fire_count = 0

    def _next_period(self) -> float:
        if self._jitter and self._rng is not None:
            offset = (self._rng.random() - 0.5) * self._jitter
            return max(self._period + offset, self._period * 0.01)
        return self._period

    def _arm(self, delay: float) -> None:
        if self._cancelled:
            return
        self._event = self._engine.schedule_in(delay, self._fire,
                                               label=self._label)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fire_count += 1
        self._callback()
        self._arm(self._next_period())

    @property
    def period(self) -> float:
        """Current repeat period in seconds."""
        return self._period

    def reschedule(self, period: float) -> None:
        """Change the repeat period, effective from the next firing."""
        if period <= 0:
            raise SimulationError(f"period must be > 0, got {period}")
        self._period = period

    def cancel(self) -> None:
        """Stop the task; the pending firing (if any) is cancelled."""
        self._cancelled = True
        if self._event is not None:
            self._event.cancel()
