"""Array-backed water-filling: interned problem state + vectorized core.

The scalar :func:`~repro.sim.bandwidth.progressive_fill` is the reference
implementation of weighted max-min water-filling, but it is a pure-Python
loop that costs O(rounds x constraints x membership).  This module provides
the production path for large problems:

* :class:`InternedProblem` — a mirror of the resident solver's problem kept
  in *interned* form: every flow and constraint gets a stable integer slot,
  weights/demands/capacities live in dense numpy vectors, and each flow's
  constraint incidence is a small pre-interned (constraint-slot,
  multiplicity) array computed once at ``set_flow`` time.  The mirror is
  maintained incrementally by :class:`~repro.sim.solver.IncrementalMaxMinSolver`
  mutations — a solve never re-hashes a flow or constraint id.
* :func:`_fill_arrays` — the vectorized water-filling round: active
  weights, headroom, demand gaps, and freeze masks are computed with
  ``bincount``/segment operations over a flat edge list instead of nested
  Python loops.  Semantically identical to the scalar core (same epsilons,
  same freeze rules, same round bound); results agree within floating-point
  accumulation order (1e-6, enforced by the seeded property suite in
  ``tests/test_sim_arrays.py``).
* :func:`progressive_fill_array` — a drop-in vectorized replacement for
  ``progressive_fill`` on an already-built ``(members, caps)`` problem,
  used by the stateless entry point for large instances.

numpy overhead dominates for tiny problems (the constant cost of building
local arrays exceeds the whole scalar solve below a few dozen flows), and
chaos/churn workloads produce tiny components constantly — so the resident
solver picks the path *per component*, falling back to the scalar core
below :data:`DEFAULT_ARRAY_CROSSOVER`.  The crossover was measured on the
benchmark VM (see ``BENCH_sim_performance.json``): with the running-total
scalar core the two paths break even around ~256 flows per component; at
1000 flows the array path is ~4x faster and still widening.

numpy is an optional dependency of this module alone: when it is missing,
:data:`HAVE_NUMPY` is ``False``, the solver silently keeps the scalar path
for every component, and :class:`NullInternedProblem` stands in as an
inert mirror.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:  # gate, don't require: the scalar core remains fully functional
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    np = None  # type: ignore[assignment]

from .bandwidth import _ABS_EPSILON, _EPSILON, FlowDemand

#: Whether the vectorized path is available at all.
HAVE_NUMPY = np is not None

#: Component size (flow count) at which the solver switches from the scalar
#: to the array core.  Measured break-even on the reference VM is ~256
#: flows (the scalar core carries running usage/active-weight totals, so
#: its rounds are cheap; numpy's per-call constants only amortize once
#: components get big).  Below this, churn-sized components never pay
#: numpy setup; above it the array core wins and keeps widening (~4x at
#: 1000 flows).
DEFAULT_ARRAY_CROSSOVER = 256


def _fill_arrays(
    weights: "np.ndarray",
    demands: "np.ndarray",
    caps: "np.ndarray",
    edge_flow: "np.ndarray",
    edge_cons: "np.ndarray",
    edge_mult: "np.ndarray",
) -> "np.ndarray":
    """Vectorized progressive filling over a flat edge list.

    Args:
        weights/demands: Per-flow vectors (local indices ``0..n-1``).
        caps: Per-constraint capacity vector (local indices ``0..m-1``).
        edge_flow/edge_cons/edge_mult: The incidence as parallel arrays:
            edge *k* says flow ``edge_flow[k]`` crosses constraint
            ``edge_cons[k]`` with multiplicity ``edge_mult[k]``.

    Returns:
        Per-flow rate vector.  Mirrors the scalar core exactly: same
        initial freezes, same per-round step/freeze rules, same round
        bound, same "elastic flow with no capacity constraint" error.
    """
    n = len(weights)
    m = len(caps)
    rates = np.zeros(n)
    frozen = demands <= _ABS_EPSILON
    finite_demand = np.isfinite(demands)
    # Demand threshold for the freeze check; inf stays inf (never reached).
    demand_floor = demands * (1.0 - _EPSILON)
    used = np.zeros(m)
    # used >= cap_stop <=> used + _ABS_EPSILON >= cap * (1 - _EPSILON),
    # the scalar core's saturation test, folded into one precomputed bound.
    cap_stop = caps * (1.0 - _EPSILON) - _ABS_EPSILON
    ratio = np.empty(m)

    # The loop works on *live* index/edge arrays, re-filtered whenever a
    # flow freezes: per-round cost then tracks the shrinking active set —
    # matching the scalar core, whose active lists drain as flows freeze —
    # instead of staying O(total edges) for every round.  `used` is
    # carried, never re-summed, so dropping a frozen flow's edges cannot
    # lose its capacity footprint.
    idx = np.flatnonzero(~frozen)
    if idx.size < n and edge_flow.size:
        live = ~frozen[edge_flow]
        edge_flow = edge_flow[live]
        edge_cons = edge_cons[live]
        edge_mult = edge_mult[live]
    edge_weight = weights[edge_flow] * edge_mult
    idxf = idx[finite_demand[idx]]

    for _round in range(2 * (n + m) + 2):
        if not idx.size:
            break

        # Active weight per constraint (edges only cover live flows).
        active_weight = np.bincount(edge_cons, weights=edge_weight,
                                    minlength=m)

        # Growth headroom per constraint: remaining capacity shared over
        # the total active weight crossing it.
        step = math.inf
        if m:
            headroom = caps - used
            np.maximum(headroom, 0.0, out=headroom)
            ratio.fill(math.inf)
            np.divide(headroom, active_weight, out=ratio,
                      where=active_weight > 0.0)
            step = float(ratio.min())

        # Growth headroom per flow demand.
        if idxf.size:
            gap = (demands[idxf] - rates[idxf]) / weights[idxf]
            gap_min = float(gap.min())
            if gap_min < step:
                step = gap_min

        if not math.isfinite(step):
            # No binding constraint at all: unconstrained elastic flows.
            raise ValueError("elastic flow with no capacity constraint")

        if step > 0:
            rates[idx] += weights[idx] * step
            used += active_weight * step

        froze = False

        # Freeze demand-satisfied flows (clamping overshoot back out of
        # the running per-constraint usage).
        if idxf.size:
            reached = rates[idxf] + _ABS_EPSILON >= demand_floor[idxf]
            if reached.any():
                reached_idx = idxf[reached]
                overshoot = rates[reached_idx] - demands[reached_idx]
                np.maximum(overshoot, 0.0, out=overshoot)
                if overshoot.any():
                    over_full = np.zeros(n)
                    over_full[reached_idx] = overshoot
                    used -= np.bincount(
                        edge_cons,
                        weights=over_full[edge_flow] * edge_mult,
                        minlength=m,
                    )
                    rates[reached_idx] = demands[reached_idx]
                frozen[reached_idx] = True
                froze = True

        # Freeze flows on saturated constraints.
        saturated = used >= cap_stop
        if saturated.any():
            hit = saturated[edge_cons]
            if hit.any():
                frozen[edge_flow[hit]] = True
                froze = True

        if froze:
            idx = idx[~frozen[idx]]
            idxf = idx[finite_demand[idx]]
            live = ~frozen[edge_flow]
            edge_flow = edge_flow[live]
            edge_cons = edge_cons[live]
            edge_mult = edge_mult[live]
            edge_weight = edge_weight[live]

    return rates


def progressive_fill_array(
    flows: Sequence[FlowDemand],
    members: Mapping[str, List[int]],
    caps: Mapping[str, float],
) -> List[float]:
    """Vectorized drop-in for ``progressive_fill`` on a built problem.

    Converts the string-keyed ``(members, caps)`` structures from
    :func:`~repro.sim.bandwidth.build_problem` into flat arrays and runs
    :func:`_fill_arrays`.  Used by the stateless entry point for large
    instances; the resident solver skips this conversion entirely by
    keeping an :class:`InternedProblem` mirror.
    """
    if np is None:  # pragma: no cover - numpy-less installs
        raise RuntimeError("progressive_fill_array requires numpy")
    n = len(flows)
    weights = np.fromiter((f.weight for f in flows), dtype=np.float64, count=n)
    demands = np.fromiter((f.demand for f in flows), dtype=np.float64, count=n)
    cap_vec = np.empty(len(caps))
    edge_flow: List[int] = []
    edge_cons: List[int] = []
    edge_mult: List[float] = []
    for ci, (cid, flow_ids) in enumerate(members.items()):
        cap_vec[ci] = caps[cid]
        # Collapse repeated crossings into one weighted edge.
        counts: Dict[int, int] = {}
        for i in flow_ids:
            counts[i] = counts.get(i, 0) + 1
        for i, k in counts.items():
            edge_flow.append(i)
            edge_cons.append(ci)
            edge_mult.append(float(k))
    rates = _fill_arrays(
        weights,
        demands,
        cap_vec,
        np.asarray(edge_flow, dtype=np.int64),
        np.asarray(edge_cons, dtype=np.int64),
        np.asarray(edge_mult, dtype=np.float64),
    )
    return rates.tolist()


class InternedProblem:
    """Int-indexed, incrementally maintained mirror of the solver's problem.

    Flows and constraints are interned once, at mutation time; solves
    gather pre-built per-flow incidence arrays instead of re-hashing ids.
    The full-problem gather (every flow, used by full solves and bulk
    usage queries) is cached and invalidated by a structure version that
    bumps only when the incidence *structure* changes — demand, weight,
    and capacity updates write straight into the dense vectors.
    """

    _GROW = 16

    def __init__(self) -> None:
        if np is None:  # pragma: no cover - numpy-less installs
            raise RuntimeError("InternedProblem requires numpy")
        self._flow_slots: Dict[str, int] = {}
        self._free_flow_slots: List[int] = []
        self._flow_edges: List[Optional[Tuple["np.ndarray", "np.ndarray"]]] = []
        self.weights = np.zeros(self._GROW)
        self.demands = np.zeros(self._GROW)
        self.rates = np.zeros(self._GROW)

        self._cons_slots: Dict[str, int] = {}
        self._cons_ids: List[Optional[str]] = []
        self._free_cons_slots: List[int] = []
        self.caps = np.zeros(self._GROW)

        #: Bumped whenever the incidence structure changes (flow added,
        #: removed, or re-linked; constraint added or removed).
        self.structure_version = 0
        self._full_cache: Optional[Tuple[int, tuple]] = None

    # -- interning -----------------------------------------------------------

    def _flow_slot(self, fid: str) -> int:
        slot = self._flow_slots.get(fid)
        if slot is None:
            if self._free_flow_slots:
                slot = self._free_flow_slots.pop()
            else:
                slot = len(self._flow_edges)
                self._flow_edges.append(None)
                if slot >= len(self.weights):
                    grow = max(2 * len(self.weights), slot + 1)
                    self.weights = np.resize(self.weights, grow)
                    self.demands = np.resize(self.demands, grow)
                    self.rates = np.resize(self.rates, grow)
            self.rates[slot] = 0.0
            self._flow_slots[fid] = slot
        return slot

    def _cons_slot(self, cid: str) -> int:
        slot = self._cons_slots.get(cid)
        if slot is None:
            if self._free_cons_slots:
                slot = self._free_cons_slots.pop()
                self._cons_ids[slot] = cid
            else:
                slot = len(self._cons_ids)
                self._cons_ids.append(cid)
                if slot >= len(self.caps):
                    self.caps = np.resize(self.caps, max(2 * len(self.caps), slot + 1))
            self._cons_slots[cid] = slot
        return slot

    def _bump(self) -> None:
        self.structure_version += 1
        self._full_cache = None

    # -- mutation mirror (driven by IncrementalMaxMinSolver) -----------------

    def set_capacity(self, cid: str, capacity: float) -> None:
        """Intern a physical constraint and store its capacity."""
        slot = self._cons_slot(cid)  # may rebind self.caps (growth)
        self.caps[slot] = capacity

    def remove_capacity(self, cid: str) -> None:
        """Forget a (by contract unused) physical constraint."""
        slot = self._cons_slots.pop(cid, None)
        if slot is not None:
            self._cons_ids[slot] = None
            self._free_cons_slots.append(slot)
            self._bump()

    # Virtual constraints share the interned table; membership is resolved
    # at gather time from the solver's adjacency.
    def set_constraint_capacity(self, cid: str, capacity: float) -> None:
        """Install/update a virtual constraint's capacity (bumps structure:
        its membership may have changed with it)."""
        slot = self._cons_slot(cid)  # may rebind self.caps (growth)
        self.caps[slot] = capacity
        self._bump()

    remove_constraint = remove_capacity

    def set_flow(self, fid: str, links: Tuple[str, ...],
                 demand: float, weight: float) -> None:
        """Intern *fid* (new or re-linked) and pre-build its incidence."""
        slot = self._flow_slot(fid)
        self.weights[slot] = weight
        self.demands[slot] = demand
        counts: Dict[int, int] = {}
        for cid in links:
            ci = self._cons_slot(cid)
            counts[ci] = counts.get(ci, 0) + 1
        self._flow_edges[slot] = (
            np.fromiter(counts.keys(), dtype=np.int64, count=len(counts)),
            np.fromiter(counts.values(), dtype=np.float64, count=len(counts)),
        )
        self._bump()

    def set_flow_params(self, fid: str, demand: float, weight: float) -> None:
        """Update a flow's dense parameters (no structure bump)."""
        slot = self._flow_slots[fid]
        self.weights[slot] = weight
        self.demands[slot] = demand

    def remove_flow(self, fid: str) -> None:
        """Free a flow's slot."""
        slot = self._flow_slots.pop(fid, None)
        if slot is not None:
            self._flow_edges[slot] = None
            self.rates[slot] = 0.0
            self._free_flow_slots.append(slot)
            self._bump()

    def store_rates(self, fids: Sequence[str], rates: Sequence[float]) -> None:
        """Mirror scalar-path results into the dense rate vector."""
        for fid, rate in zip(fids, rates):
            self.rates[self._flow_slots[fid]] = rate

    # -- gathering -----------------------------------------------------------

    def _gather(
        self,
        fids: Sequence[str],
        virtual_edges: Sequence[Tuple[str, Sequence[str]]],
    ) -> tuple:
        """Build the local arrays for one (sub-)problem.

        Returns ``(slots, w, d, caps_local, edge_flow, edge_cons,
        edge_mult)`` with local flow indices following *fids* order and
        constraints densified to the ones actually crossed.
        """
        n = len(fids)
        local: Dict[str, int] = {}
        slots = np.empty(n, dtype=np.int64)
        parts_cons: List["np.ndarray"] = []
        parts_mult: List["np.ndarray"] = []
        parts_flow: List["np.ndarray"] = []
        for i, fid in enumerate(fids):
            slot = self._flow_slots[fid]
            slots[i] = slot
            local[fid] = i
            edges = self._flow_edges[slot]
            if edges is not None and len(edges[0]):
                parts_cons.append(edges[0])
                parts_mult.append(edges[1])
                parts_flow.append(np.full(len(edges[0]), i, dtype=np.int64))
        for cid, member_fids in virtual_edges:
            if not member_fids:
                continue
            cslot = self._cons_slots[cid]
            k = len(member_fids)
            parts_cons.append(np.full(k, cslot, dtype=np.int64))
            parts_mult.append(np.ones(k))
            parts_flow.append(
                np.fromiter((local[f] for f in member_fids),
                            dtype=np.int64, count=k)
            )
        if parts_cons:
            edge_cons_global = np.concatenate(parts_cons)
            edge_mult = np.concatenate(parts_mult)
            edge_flow = np.concatenate(parts_flow)
            ucons, edge_cons = np.unique(edge_cons_global, return_inverse=True)
            caps_local = self.caps[ucons]
        else:
            edge_flow = np.empty(0, dtype=np.int64)
            edge_cons = np.empty(0, dtype=np.int64)
            edge_mult = np.empty(0)
            ucons = np.empty(0, dtype=np.int64)
            caps_local = np.empty(0)
        return (slots, self.weights[slots], self.demands[slots], caps_local,
                edge_flow, edge_cons, edge_mult, ucons)

    def _gather_full(
        self,
        fids: Sequence[str],
        virtual_edges: Sequence[Tuple[str, Sequence[str]]],
    ) -> tuple:
        """Cached :meth:`_gather` over the whole problem.

        Valid as long as the incidence structure is unchanged — any
        mutation that could alter *fids* or *virtual_edges* bumps
        :attr:`structure_version` and invalidates the cache, so weight,
        demand, and capacity refreshes reuse the gathered arrays.
        """
        if (self._full_cache is not None
                and self._full_cache[0] == self.structure_version):
            gathered = self._full_cache[1]
            slots = gathered[0]
            # Dense parameters may have moved since the gather.
            return (slots, self.weights[slots], self.demands[slots],
                    self.caps[gathered[7]], *gathered[4:])
        gathered = self._gather(fids, virtual_edges)
        self._full_cache = (self.structure_version, gathered)
        return gathered

    # -- solving -------------------------------------------------------------

    def solve(
        self,
        fids: Sequence[str],
        virtual_edges: Sequence[Tuple[str, Sequence[str]]],
        full: bool = False,
    ) -> List[float]:
        """Run the vectorized core over *fids*; returns rates in order.

        ``full=True`` marks the gather as covering the entire problem,
        enabling the structure-version cache.
        """
        gather = self._gather_full if full else self._gather
        slots, w, d, caps_local, edge_flow, edge_cons, edge_mult, _ = gather(
            fids, virtual_edges
        )
        rates = _fill_arrays(w, d, caps_local, edge_flow, edge_cons, edge_mult)
        self.rates[slots] = rates
        return rates.tolist()

    def constraint_usage(
        self,
        fids: Sequence[str],
        virtual_edges: Sequence[Tuple[str, Sequence[str]]],
    ) -> Dict[str, float]:
        """Per-constraint carried rate under the current rate vector.

        One ``bincount`` over the cached full incidence replaces the
        per-flow/per-hop Python accumulation the bulk network queries
        used to do.
        """
        slots, _w, _d, _caps, edge_flow, edge_cons, edge_mult, ucons = (
            self._gather_full(fids, virtual_edges)
        )
        if not len(ucons):
            return {}
        local_rates = self.rates[slots]
        usage = np.bincount(
            edge_cons,
            weights=local_rates[edge_flow] * edge_mult,
            minlength=len(ucons),
        )
        return {
            self._cons_ids[slot]: float(usage[i])
            for i, slot in enumerate(ucons.tolist())
        }


class NullInternedProblem:
    """Inert stand-in used when numpy is unavailable.

    Accepts every mutation silently; the solver never routes a solve to it
    because :data:`HAVE_NUMPY` gates the array path.
    """

    structure_version = 0

    def set_capacity(self, cid: str, capacity: float) -> None:
        pass

    def remove_capacity(self, cid: str) -> None:
        pass

    remove_constraint = remove_capacity

    def set_constraint_capacity(self, cid: str, capacity: float) -> None:
        pass

    def set_flow(self, fid, links, demand, weight) -> None:
        pass

    def set_flow_params(self, fid, demand, weight) -> None:
        pass

    def remove_flow(self, fid) -> None:
        pass

    def store_rates(self, fids, rates) -> None:
        pass


def make_interned_problem():
    """The interned mirror appropriate for this interpreter."""
    return InternedProblem() if HAVE_NUMPY else NullInternedProblem()
