"""Live fabric state: active flows, fair-share rates, and accounting.

:class:`FabricNetwork` is the simulator's beating heart.  It owns the set of
active flows, recomputes the weighted max-min allocation whenever the flow
set or the topology changes, integrates per-link/per-tenant byte counters
over simulated time (the ground truth that telemetry later samples), and
schedules finite-flow completions on the engine.
"""

from __future__ import annotations

import itertools
import math
from contextlib import contextmanager
from typing import (
    Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple)

from ..errors import FlowError, UnknownLinkError
from ..trace.recorder import TRACER
from ..topology.graph import HostTopology
from ..topology.routing import Path
from .bandwidth import Constraint, FlowDemand
from .engine import Engine
from .events import Event
from .flows import Flow, FlowState
from .latency import DEFAULT_LATENCY_MODEL, LatencyModel
from .solver import IncrementalMaxMinSolver, SolverStats

#: Tenant id used for infrastructure traffic (telemetry, heartbeats).
SYSTEM_TENANT = "_system"

#: Bytes below which a finite flow is considered fully transferred.
_COMPLETION_SLACK = 1e-6

#: Minimum completion-event horizon (seconds).  Guards against the float
#: trap where a tiny remaining byte count yields an ETA below the clock's
#: representable resolution, re-firing the completion event at the same
#: timestamp forever.
_MIN_ETA = 1e-9

#: Direction suffixes for full-duplex constraint ids.
FORWARD = "fwd"
REVERSE = "rev"


def directed_id(link_id: str, direction: str) -> str:
    """Constraint id for one direction of a link (links are full duplex)."""
    return f"{link_id}|{direction}"


class FabricNetwork:
    """The simulated intra-host fabric carrying fluid flows.

    Args:
        topology: The host topology to run on.
        engine: The discrete-event engine driving simulated time.
        latency_model: Queueing model for analytic small-op latencies.
        coalesce_recompute: When ``True``, re-solves triggered by flow or
            cap events are deferred to a single engine event at the same
            simulated timestamp, so N same-instant events cost one solve
            instead of N.  Rate queries flush the pending solve, keeping
            observable rates consistent; only ``Flow.current_rate`` read
            directly between same-instant events can be stale.
        array_crossover: Forwarded to
            :class:`~repro.sim.solver.IncrementalMaxMinSolver`: component
            size at which solves take the vectorized array core.
    """

    def __init__(
        self,
        topology: HostTopology,
        engine: Engine,
        latency_model: Optional[LatencyModel] = None,
        coalesce_recompute: bool = False,
        array_crossover: Optional[int] = None,
    ) -> None:
        self.topology = topology
        self.engine = engine
        self.latency_model = latency_model or DEFAULT_LATENCY_MODEL
        self.coalesce_recompute = coalesce_recompute

        self._flows: Dict[str, Flow] = {}
        self._directed_links: Dict[str, Tuple[str, ...]] = {}
        self._flow_seq = itertools.count()
        self._last_sync = engine.now
        self._completion_event: Optional[Event] = None

        # The resident incremental solver: flow/constraint mutations mark
        # components dirty; _solve() re-solves only those.
        self._solver = IncrementalMaxMinSolver(array_crossover=array_crossover)
        for link_id in topology.link_ids():
            cap = topology.link(link_id).effective_capacity
            self._solver.set_capacity(directed_id(link_id, FORWARD), cap)
            self._solver.set_capacity(directed_id(link_id, REVERSE), cap)
        # Cached membership of each tenant-cap virtual constraint, so flow
        # add/remove maintains it in O(caps-of-tenant) instead of O(flows).
        self._cap_members: Dict[Tuple[str, str, Optional[str]], Set[str]] = {}

        # Recompute batching/coalescing.
        self._batch_depth = 0
        self._solve_pending = False
        self._pending_solve_event: Optional[Event] = None

        # Ground-truth accounting (telemetry samples these).
        self._link_bytes: Dict[str, float] = {
            link_id: 0.0 for link_id in topology.link_ids()
        }
        self._link_dir_bytes: Dict[str, float] = {}
        self._tenant_link_bytes: Dict[Tuple[str, str], float] = {}

        # Arbiter-injected state.
        self._tenant_weights: Dict[str, float] = {}
        self._tenant_link_caps: Dict[Tuple[str, str], float] = {}

        # Observers.
        self._completion_listeners: List[Callable[[Flow], None]] = []
        self._start_listeners: List[Callable[[Flow], None]] = []
        self._link_state_listeners: List[Callable[[str, bool], None]] = []
        self._recompute_listeners: List[Callable[[], None]] = []
        self._recompute_count = 0

    # -- flow lifecycle ------------------------------------------------------

    def new_flow_id(self, prefix: str = "flow") -> str:
        """Generate a unique flow id."""
        return f"{prefix}-{next(self._flow_seq)}"

    def start_flow(self, flow: Flow) -> Flow:
        """Activate *flow* on the fabric and recompute rates."""
        if flow.flow_id in self._flows:
            raise FlowError(f"flow id already active: {flow.flow_id!r}")
        if flow.state is not FlowState.PENDING:
            raise FlowError(
                f"flow {flow.flow_id!r} must be PENDING, is {flow.state.value}"
            )
        for link_id in flow.path.links:
            if link_id not in self._link_bytes:
                raise UnknownLinkError(link_id)
        flow.state = FlowState.ACTIVE
        flow.created_at = flow.created_at or self.engine.now
        flow.started_at = self.engine.now
        self._directed_links[flow.flow_id] = self._direct_path(flow.path)
        self._flows[flow.flow_id] = flow
        self._solver_set_flow(flow)
        self._caps_track_flow(flow, active=True)
        self._recompute()
        for listener in self._start_listeners:
            listener(flow)
        return flow

    def start_transfer(
        self,
        tenant_id: str,
        path: Path,
        size: Optional[float] = None,
        demand: float = math.inf,
        weight: float = 1.0,
        on_complete: Optional[Callable[[Flow], None]] = None,
        tags: Optional[Dict[str, str]] = None,
        flow_id: Optional[str] = None,
    ) -> Flow:
        """Convenience wrapper: build and start a flow in one call."""
        flow = Flow(
            flow_id=flow_id or self.new_flow_id(),
            tenant_id=tenant_id,
            path=path,
            size=size,
            demand=demand,
            weight=weight,
            on_complete=on_complete,
            tags=dict(tags or {}),
        )
        return self.start_flow(flow)

    def cancel_flow(self, flow_id: str) -> Flow:
        """Stop an active flow before completion."""
        flow = self._active_flow(flow_id)
        self._sync()
        flow.state = FlowState.CANCELLED
        flow.finished_at = self.engine.now
        flow.current_rate = 0.0
        self._caps_track_flow(flow, active=False)
        del self._flows[flow_id]
        del self._directed_links[flow_id]
        self._solver.remove_flow(flow_id)
        self._recompute()
        return flow

    def _active_flow(self, flow_id: str) -> Flow:
        try:
            return self._flows[flow_id]
        except KeyError:
            raise FlowError(f"flow not active: {flow_id!r}") from None

    def active_flows(self, tenant_id: Optional[str] = None) -> List[Flow]:
        """Currently active flows, optionally filtered by tenant."""
        flows = list(self._flows.values())
        if tenant_id is not None:
            flows = [f for f in flows if f.tenant_id == tenant_id]
        return flows

    def flow(self, flow_id: str) -> Flow:
        """Return the active flow with *flow_id*."""
        return self._active_flow(flow_id)

    def has_flow(self, flow_id: str) -> bool:
        """Whether *flow_id* is currently active."""
        return flow_id in self._flows

    def on_flow_complete(self, listener: Callable[[Flow], None]) -> None:
        """Register a callback fired for every finite-flow completion."""
        self._completion_listeners.append(listener)

    def on_flow_start(self, listener: Callable[[Flow], None]) -> None:
        """Register a callback fired whenever a flow becomes active."""
        self._start_listeners.append(listener)

    def on_link_state_change(self, listener: Callable[[str, bool], None]) -> None:
        """Register a callback fired when a link transitions up/down.

        Called as ``listener(link_id, up)`` only on *actual* transitions —
        re-asserting the current state does not fire.  The recovery layer
        uses this as its flap-detection signal.
        """
        self._link_state_listeners.append(listener)

    def on_recompute(self, listener: Callable[[], None]) -> None:
        """Register a callback fired after every rate re-solve.

        Anything that changes what the fabric is carrying — flow starts,
        completions, cap changes, link failures, degradations — funnels
        through one recompute, so this is the single invalidation signal
        for caches derived from live fabric state (fleet telemetry).
        """
        self._recompute_listeners.append(listener)

    def reroute_flow(self, flow_id: str, path: Path) -> Flow:
        """Move an active flow onto *path*, preserving identity and bytes.

        The flow keeps its id, tenant, demand, weight, remaining size, and
        byte accounting; only its route changes.  Endpoints must match the
        current path (a re-route is a path repair, not a new transfer).
        The failure-recovery layer uses this to migrate traffic off dead or
        quarantined links without disturbing application state.
        """
        flow = self._active_flow(flow_id)
        for link_id in path.links:
            if link_id not in self._link_bytes:
                raise UnknownLinkError(link_id)
        if (path.src, path.dst) != (flow.path.src, flow.path.dst):
            raise FlowError(
                f"reroute of {flow_id!r} must keep endpoints "
                f"({flow.path.src!r} -> {flow.path.dst!r}), got "
                f"({path.src!r} -> {path.dst!r})"
            )
        self._sync()
        self._caps_track_flow(flow, active=False)
        flow.path = path
        self._directed_links[flow_id] = self._direct_path(path)
        self._solver_set_flow(flow)
        self._caps_track_flow(flow, active=True)
        self._recompute()
        return flow

    # -- arbiter hooks ---------------------------------------------------------

    def set_tenant_weight(self, tenant_id: str, weight: float) -> None:
        """Set the fairness weight multiplier for a tenant's flows."""
        if weight <= 0:
            raise ValueError(f"tenant weight must be > 0, got {weight}")
        self._tenant_weights[tenant_id] = weight
        self._recompute()

    def set_tenant_link_cap(self, tenant_id: str, link_id: str,
                            cap: float,
                            direction: Optional[str] = None) -> None:
        """Cap a tenant's rate on one link (bytes/s).

        With *direction* (``"fwd"``/``"rev"``), only flows traversing the
        link that way count toward the cap; without it, the cap binds the
        tenant's aggregate over both directions.  Directional and
        aggregate caps may coexist (the solver honours all of them).
        """
        if link_id not in self._link_bytes:
            raise UnknownLinkError(link_id)
        if cap < 0:
            raise ValueError(f"cap must be >= 0, got {cap}")
        if direction not in (None, FORWARD, REVERSE):
            raise ValueError(f"direction must be fwd/rev/None, "
                             f"got {direction!r}")
        key = (tenant_id, link_id, direction)
        if self._tenant_link_caps.get(key) == cap:
            # Re-asserting the exact cap would rebuild an identical
            # constraint and force a full re-solve; the arbiter re-asserts
            # every cap each round, so this no-op skip is what lets the
            # fabric (and the arbiter's quiescence check) settle.
            return
        self._tenant_link_caps[key] = cap
        if self._flows:
            self._install_cap_constraint(key)
        else:
            # No flows: the cap binds nothing, so its membership is empty
            # and the solver constraint is already absent (flows leaving
            # the fabric drop themselves from every membership).  It is
            # (re)installed by _caps_track_flow when a flow arrives.
            self._cap_members.pop(key, None)
        self._recompute()

    def clear_tenant_link_cap(self, tenant_id: str, link_id: str,
                              direction: Optional[str] = None) -> None:
        """Remove a previously set per-tenant link cap (no-op if absent)."""
        key = (tenant_id, link_id, direction)
        if self._tenant_link_caps.pop(key, None) is not None:
            self._cap_members.pop(key, None)
            self._solver.remove_constraint(self._cap_cid(key))
            self._recompute()

    def clear_tenant_caps(self, tenant_id: str) -> None:
        """Remove every cap for *tenant_id*."""
        stale = [k for k in self._tenant_link_caps if k[0] == tenant_id]
        for key in stale:
            del self._tenant_link_caps[key]
            self._cap_members.pop(key, None)
            self._solver.remove_constraint(self._cap_cid(key))
        if stale:
            self._recompute()

    def set_flow_demand(self, flow_id: str, demand: float) -> None:
        """Change a flow's offered load (bytes/s) and re-solve."""
        flow = self._active_flow(flow_id)
        if demand < 0:
            raise ValueError(f"demand must be >= 0, got {demand}")
        flow.demand = demand
        self._recompute()

    def set_flow_rate_cap(self, flow_id: str, cap: float) -> None:
        """Cap one flow's rate (bytes/s); ``inf`` removes the cap."""
        flow = self._active_flow(flow_id)
        if cap < 0:
            raise ValueError(f"cap must be >= 0, got {cap}")
        flow.rate_cap = cap
        self._recompute()

    def tenant_link_cap(self, tenant_id: str, link_id: str,
                        direction: Optional[str] = None) -> Optional[float]:
        """The cap currently applied to (*tenant_id*, *link_id*,
        *direction*), if any."""
        return self._tenant_link_caps.get((tenant_id, link_id, direction))

    # -- failures ----------------------------------------------------------------

    def degrade_link(self, link_id: str,
                     degraded_capacity: Optional[float]) -> None:
        """Silently degrade (or restore with ``None``) a link's capacity."""
        link = self.topology.link(link_id)
        link.degraded_capacity = degraded_capacity
        self._recompute()

    def set_link_up(self, link_id: str, up: bool) -> None:
        """Administratively raise/lower a link."""
        link = self.topology.link(link_id)
        changed = link.up != up
        link.up = up
        self._recompute()
        if changed:
            for listener in self._link_state_listeners:
                listener(link_id, up)

    # -- queries --------------------------------------------------------------

    def _direct_path(self, path: Path) -> Tuple[str, ...]:
        """Directed constraint ids for each hop of *path*."""
        directed = []
        for i, link_id in enumerate(path.links):
            link = self.topology.link(link_id)
            direction = FORWARD if path.devices[i] == link.src else REVERSE
            directed.append(directed_id(link_id, direction))
        return tuple(directed)

    def link_rate(self, link_id: str, direction: Optional[str] = None) -> float:
        """Instantaneous rate on *link_id* (bytes/s).

        With *direction* (``"fwd"``/``"rev"``) only that direction is
        counted; otherwise both directions are summed.
        """
        if link_id not in self._link_bytes:
            raise UnknownLinkError(link_id)
        self.flush_recompute()
        if direction is None:
            wanted = {directed_id(link_id, FORWARD),
                      directed_id(link_id, REVERSE)}
        else:
            wanted = {directed_id(link_id, direction)}
        total = 0.0
        for f in self._flows.values():
            directed = self._directed_links[f.flow_id]
            hits = sum(1 for d in directed if d in wanted)
            total += f.current_rate * hits
        return total

    def link_utilization(self, link_id: str) -> float:
        """Instantaneous utilization of *link_id* in [0, 1].

        Links are full duplex; utilization is the *busier direction's*
        share of per-direction capacity, which is what drives queueing.
        """
        cap = self.topology.link(link_id).effective_capacity
        busiest = max(self.link_rate(link_id, FORWARD),
                      self.link_rate(link_id, REVERSE))
        if cap <= 0:
            return 1.0 if busiest > 0 else 0.0
        return min(busiest / cap, 1.0)

    def link_utilizations(self, clamp: bool = True,
                          only: Optional[Iterable[str]] = None,
                          ) -> Dict[str, float]:
        """Instantaneous utilization of *every* link in one pass.

        Like the other rate queries, this flushes any pending coalesced
        re-solve first, so a burst of same-instant flow events can never
        yield stale utilizations.  Per-direction rates come straight from
        the solver's interned incidence state
        (:meth:`~repro.sim.solver.IncrementalMaxMinSolver.constraint_usage`,
        one vectorized segment-sum when numpy is available) instead of a
        python sweep over every flow's hops.  With ``clamp`` (the
        default) values are capped at 1.0; ``clamp=False`` exposes
        oversubscription.  ``only=`` restricts the result to the given
        link ids (the latency probe asks for just its sampled paths'
        links); values are identical to the unrestricted query's.
        """
        self.flush_recompute()
        directed_rates = self._solver.constraint_usage()
        utilizations: Dict[str, float] = {}
        if only is None:
            wanted: Iterable[str] = self._link_bytes
        else:
            wanted = only
            for link_id in wanted:
                if link_id not in self._link_bytes:
                    raise UnknownLinkError(link_id)
        for link_id in wanted:
            busiest = max(
                directed_rates.get(directed_id(link_id, FORWARD), 0.0),
                directed_rates.get(directed_id(link_id, REVERSE), 0.0),
            )
            cap = self.topology.link(link_id).effective_capacity
            if cap <= 0:
                utilizations[link_id] = 1.0 if busiest > 0 else 0.0
            else:
                value = busiest / cap
                utilizations[link_id] = min(value, 1.0) if clamp else value
        return utilizations

    def tenant_link_rate(self, tenant_id: str, link_id: str,
                         direction: Optional[str] = None) -> float:
        """Instantaneous rate of one tenant on one link.

        With *direction*, only that direction's traversals count;
        otherwise both directions are summed.
        """
        if link_id not in self._link_bytes:
            raise UnknownLinkError(link_id)
        self.flush_recompute()
        if direction is None:
            wanted = {directed_id(link_id, FORWARD),
                      directed_id(link_id, REVERSE)}
        else:
            wanted = {directed_id(link_id, direction)}
        total = 0.0
        for f in self._flows.values():
            if f.tenant_id != tenant_id:
                continue
            directed = self._directed_links[f.flow_id]
            hits = sum(1 for d in directed if d in wanted)
            total += f.current_rate * hits
        return total

    def link_bytes(self, link_id: str,
                   direction: Optional[str] = None) -> float:
        """Cumulative bytes carried by *link_id* up to now (ground truth).

        With *direction* (``"fwd"``/``"rev"``), only that direction —
        matching real per-direction rx/tx hardware counters.
        """
        self._sync()
        if link_id not in self._link_bytes:
            raise UnknownLinkError(link_id)
        if direction is None:
            return self._link_bytes[link_id]
        return self._link_dir_bytes.get(directed_id(link_id, direction), 0.0)

    def tenant_link_bytes(self, tenant_id: str, link_id: str) -> float:
        """Cumulative bytes of one tenant on one link (ground truth)."""
        self._sync()
        return self._tenant_link_bytes.get((tenant_id, link_id), 0.0)

    def path_latency(self, path: Path, message_size: float = 0.0) -> float:
        """Analytic one-way latency of a small op along *path* right now."""
        return self.latency_model.path_latency(
            self.topology, path, self.link_utilization, message_size
        )

    def round_trip_latency(self, path: Path, request_size: float = 0.0,
                           response_size: float = 0.0) -> float:
        """Analytic round-trip latency along *path* and back."""
        return self.latency_model.round_trip(
            self.topology, path, self.link_utilization,
            request_size, response_size,
        )

    @property
    def recompute_count(self) -> int:
        """How many times rates were re-solved (a cost/scale metric)."""
        return self._recompute_count

    # -- internals ----------------------------------------------------------------

    def _sync(self) -> None:
        """Integrate byte counters from the last sync point to now."""
        now = self.engine.now
        dt = now - self._last_sync
        if dt <= 0:
            return
        for flow in self._flows.values():
            moved = flow.current_rate * dt
            if moved <= 0:
                continue
            if flow.is_finite:
                moved = min(moved, flow.remaining_bytes)
            flow.bytes_sent += moved
            directed = self._directed_links[flow.flow_id]
            for link_id, dlink in zip(flow.path.links, directed):
                self._link_bytes[link_id] += moved
                self._link_dir_bytes[dlink] = (
                    self._link_dir_bytes.get(dlink, 0.0) + moved
                )
                key = (flow.tenant_id, link_id)
                self._tenant_link_bytes[key] = (
                    self._tenant_link_bytes.get(key, 0.0) + moved
                )
        self._last_sync = now

    # -- solver plumbing ----------------------------------------------------------

    @staticmethod
    def _cap_cid(key: Tuple[str, str, Optional[str]]) -> str:
        """Virtual constraint id for one tenant-cap key."""
        tenant_id, link_id, direction = key
        return f"cap:{tenant_id}:{link_id}:{direction or 'any'}"

    @staticmethod
    def _cap_wanted(key: Tuple[str, str, Optional[str]]) -> Set[str]:
        """Directed constraint ids a tenant-cap key binds against."""
        _tenant_id, link_id, direction = key
        if direction is None:
            return {directed_id(link_id, FORWARD),
                    directed_id(link_id, REVERSE)}
        return {directed_id(link_id, direction)}

    def _solver_set_flow(self, flow: Flow) -> None:
        """Mirror one fabric flow into the resident solver."""
        self._solver.set_flow(
            FlowDemand(
                flow_id=flow.flow_id,
                links=self._directed_links[flow.flow_id],
                demand=flow.effective_demand,
                weight=flow.weight * self._tenant_weights.get(
                    flow.tenant_id, 1.0
                ),
            )
        )

    def _push_cap_constraint(self, key: Tuple[str, str, Optional[str]]
                             ) -> None:
        """Sync one cap's membership set into the solver."""
        member = self._cap_members.get(key) or ()
        cid = self._cap_cid(key)
        if member:
            self._solver.set_constraint(
                Constraint(
                    constraint_id=cid,
                    capacity=self._tenant_link_caps[key],
                    member_flows=frozenset(member),
                )
            )
        else:
            self._solver.remove_constraint(cid)

    def _install_cap_constraint(self, key: Tuple[str, str, Optional[str]]
                                ) -> None:
        """(Re)build a cap's membership from scratch (cap set/changed)."""
        tenant_id = key[0]
        wanted = self._cap_wanted(key)
        self._cap_members[key] = {
            f.flow_id for f in self._flows.values()
            if f.tenant_id == tenant_id
            and wanted.intersection(self._directed_links[f.flow_id])
        }
        self._push_cap_constraint(key)

    def _caps_track_flow(self, flow: Flow, active: bool) -> None:
        """Maintain cap memberships as *flow* joins/leaves the fabric."""
        directed = self._directed_links[flow.flow_id]
        for key in self._tenant_link_caps:
            if key[0] != flow.tenant_id:
                continue
            if not self._cap_wanted(key).intersection(directed):
                continue
            members = self._cap_members.setdefault(key, set())
            if active:
                members.add(flow.flow_id)
            else:
                members.discard(flow.flow_id)
            self._push_cap_constraint(key)

    def _refresh_solver_inputs(self) -> None:
        """Re-sync capacities and flow parameters into the solver.

        Cheap O(links + flows) comparison scan (the solver ignores writes
        of unchanged values); it keeps the incremental path correct even
        when topology links or flow demands are mutated directly rather
        than through the network's mutation methods.
        """
        solver = self._solver
        for link_id in self._link_bytes:
            cap = self.topology.link(link_id).effective_capacity
            solver.set_capacity(directed_id(link_id, FORWARD), cap)
            solver.set_capacity(directed_id(link_id, REVERSE), cap)
        weights = self._tenant_weights
        for f in self._flows.values():
            solver.set_flow_params(
                f.flow_id,
                demand=f.effective_demand,
                weight=f.weight * weights.get(f.tenant_id, 1.0),
            )

    def _solve(self) -> None:
        """Re-solve dirty components and push rates onto the flows."""
        self._refresh_solver_inputs()
        rates = self._solver.solve()
        for f in self._flows.values():
            f.current_rate = rates.get(f.flow_id, 0.0)

    @property
    def solver_stats(self) -> SolverStats:
        """The resident solver's cost counters (benchmark/test hook)."""
        return self._solver.stats

    # -- recompute batching -------------------------------------------------------

    @contextmanager
    def batch(self) -> Iterator["FabricNetwork"]:
        """Defer re-solves: N mutations inside the block cost one solve.

        Nestable; the single recompute happens when the outermost block
        exits (and only if something inside requested one).  Time must not
        advance inside a batch — mutate state, don't run the engine.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._solve_pending:
                self._solve_pending = False
                if TRACER.enabled:
                    TRACER.instant("network", "batch_flush",
                                   {"t": self.engine.now})
                self._recompute_now()

    def _recompute(self) -> None:
        """Request a re-solve, honouring batching/coalescing modes."""
        if self._batch_depth > 0:
            self._sync()
            self._solve_pending = True
            return
        if self.coalesce_recompute:
            self._sync()
            if self._pending_solve_event is None:
                self._pending_solve_event = self.engine.schedule_now(
                    self._fire_pending_solve, label="coalesced-recompute",
                )
            return
        self._recompute_now()

    def _recompute_now(self) -> None:
        """Sync accounting, re-solve rates, reschedule completion."""
        self._cancel_pending_solve()
        if TRACER.enabled:
            with TRACER.span("network", "recompute",
                             {"t": self.engine.now,
                              "active_flows": len(self._flows)}):
                self._sync()
                self._solve()
            TRACER.counter("network", "network.active_flows",
                           len(self._flows))
        else:
            self._sync()
            self._solve()
        self._recompute_count += 1
        self._schedule_completion()
        if self._recompute_listeners:
            for listener in self._recompute_listeners:
                listener()

    def _fire_pending_solve(self) -> None:
        self._pending_solve_event = None
        if TRACER.enabled:
            TRACER.instant("network", "coalesced_flush",
                           {"t": self.engine.now})
        self._recompute_now()

    def _cancel_pending_solve(self) -> None:
        if self._pending_solve_event is not None:
            self._pending_solve_event.cancel()
            self._pending_solve_event = None

    def flush_recompute(self) -> None:
        """Force a deferred (coalesced) re-solve to run immediately."""
        if self._pending_solve_event is not None:
            self._recompute_now()  # cancels the queued event itself

    def _schedule_completion(self) -> None:
        """Schedule the next finite-flow completion, if any."""
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        horizon = math.inf
        for flow in self._flows.values():
            if flow.is_finite and flow.current_rate > 0:
                eta = flow.remaining_bytes / flow.current_rate
                horizon = min(horizon, eta)
        if math.isinf(horizon):
            return
        self._completion_event = self.engine.schedule_in(
            max(horizon, _MIN_ETA), self._on_completion_tick,
            label="flow-completion",
        )

    def _on_completion_tick(self) -> None:
        """Complete every finite flow that has drained; then re-solve."""
        self._sync()
        finished = [
            f for f in self._flows.values()
            if f.is_finite and f.remaining_bytes <= max(
                _COMPLETION_SLACK, f.current_rate * _MIN_ETA
            )
        ]
        for flow in finished:
            flow.state = FlowState.COMPLETED
            flow.finished_at = self.engine.now
            flow.current_rate = 0.0
            flow.bytes_sent = float(flow.size)
            self._caps_track_flow(flow, active=False)
            del self._flows[flow.flow_id]
            del self._directed_links[flow.flow_id]
            self._solver.remove_flow(flow.flow_id)
        self._recompute()
        for flow in finished:
            if flow.on_complete is not None:
                flow.on_complete(flow)
            for listener in self._completion_listeners:
                listener(flow)
