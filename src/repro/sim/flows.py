"""Flow objects: the unit of bandwidth consumption in the fluid model."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..errors import FlowError
from ..topology.routing import Path


class FlowState(enum.Enum):
    """Lifecycle of a flow."""

    PENDING = "pending"  # created, not yet started on the fabric
    ACTIVE = "active"  # consuming bandwidth
    COMPLETED = "completed"  # finite flow transferred all its bytes
    CANCELLED = "cancelled"  # stopped before completion


@dataclass
class Flow:
    """A bandwidth-consuming transfer along a fixed path.

    Attributes:
        flow_id: Unique id.
        tenant_id: Owning tenant (``"_system"`` for infrastructure traffic
            like telemetry shipping and heartbeats).
        path: The :class:`~repro.topology.routing.Path` traversed.
        size: Total bytes to move, or ``None`` for an unbounded (persistent)
            flow that runs until cancelled.
        demand: Maximum useful rate in bytes/s (application offered load);
            ``inf`` means elastic (take any fair share available).
        weight: Max-min fairness weight.
        rate_cap: Runtime cap imposed by the arbiter (bytes/s); combined
            with demand as ``min(demand, rate_cap)``.
        on_complete: Callback fired when a finite flow finishes.
        tags: Free-form labels (application name, operation type ...).
    """

    flow_id: str
    tenant_id: str
    path: Path
    size: Optional[float] = None
    demand: float = math.inf
    weight: float = 1.0
    rate_cap: float = math.inf
    on_complete: Optional[Callable[["Flow"], None]] = None
    tags: Dict[str, str] = field(default_factory=dict)

    # Mutable runtime state (managed by FabricNetwork).
    state: FlowState = FlowState.PENDING
    current_rate: float = 0.0
    bytes_sent: float = 0.0
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size is not None and self.size <= 0:
            raise FlowError(f"flow {self.flow_id!r}: size must be > 0 or None")
        if self.demand < 0:
            raise FlowError(f"flow {self.flow_id!r}: demand must be >= 0")
        if self.weight <= 0:
            raise FlowError(f"flow {self.flow_id!r}: weight must be > 0")

    @property
    def effective_demand(self) -> float:
        """Offered load after applying the arbiter's rate cap."""
        return min(self.demand, self.rate_cap)

    @property
    def remaining_bytes(self) -> float:
        """Bytes left to transfer (``inf`` for unbounded flows)."""
        if self.size is None:
            return math.inf
        return max(self.size - self.bytes_sent, 0.0)

    @property
    def is_finite(self) -> bool:
        """Whether the flow has a fixed size."""
        return self.size is not None

    @property
    def duration(self) -> Optional[float]:
        """Completion time minus start time, when both are known."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def throughput(self) -> Optional[float]:
        """Average achieved rate over the flow's lifetime (bytes/s)."""
        d = self.duration
        if d is None or d <= 0:
            return None
        return self.bytes_sent / d

    def __str__(self) -> str:
        return (f"Flow({self.flow_id} tenant={self.tenant_id} "
                f"{self.path.src}->{self.path.dst} state={self.state.value})")
