"""Weighted, demand-limited max-min fair bandwidth allocation.

The fluid model at the heart of the simulator: each active flow traverses a
set of capacity constraints (physical links, plus any *virtual* constraints
the arbiter injects, e.g. a per-tenant cap on one link) and receives a rate
via progressive filling (water-filling):

1. grow every unfrozen flow's rate in proportion to its weight;
2. when a constraint saturates, freeze every flow crossing it;
3. when a flow reaches its demand, freeze that flow;
4. repeat until all flows are frozen.

This yields the classic weighted max-min fair allocation, which is the
accepted fluid approximation for PCIe/memory-bus bandwidth sharing under
congestion (see Neugebauer'18's PCIe model, and fair-share assumptions in
the QoS literature the paper cites).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Relative tolerance for saturation checks.
_EPSILON = 1e-9

#: Absolute tolerance in bytes/s: demands/rates below this are zero.  Fabric
#: quantities are O(1e9), so 1e-9 B/s is twenty orders below signal — but it
#: keeps denormal inputs from stalling the water-filling loop.
_ABS_EPSILON = 1e-9


@dataclass(frozen=True)
class FlowDemand:
    """One flow's input to the solver.

    Attributes:
        flow_id: Unique identifier.
        links: Ids of the capacity constraints the flow crosses (physical
            link ids and/or virtual constraint ids).
        demand: Maximum useful rate in bytes/s (``inf`` for elastic flows).
        weight: Max-min weight (> 0); rates grow in proportion to weights.
    """

    flow_id: str
    links: Tuple[str, ...]
    demand: float = math.inf
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"flow {self.flow_id!r}: weight must be > 0")
        if self.demand < 0:
            raise ValueError(f"flow {self.flow_id!r}: demand must be >= 0")


@dataclass(frozen=True)
class Constraint:
    """A named capacity constraint (physical or virtual).

    Physical constraints apply to every flow that lists them in ``links``.
    Virtual constraints (e.g. tenant caps) additionally restrict membership
    to ``member_flows`` when given.
    """

    constraint_id: str
    capacity: float
    member_flows: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(
                f"constraint {self.constraint_id!r}: capacity must be >= 0"
            )


def build_problem(
    flows: Sequence[FlowDemand],
    capacities: Mapping[str, float],
    extra_constraints: Iterable[Constraint] = (),
) -> Tuple[Dict[str, List[int]], Dict[str, float]]:
    """Validate inputs and build the constraint-membership structures.

    Returns ``(members, caps)``: constraint id -> flow indices (with
    multiplicity — a flow crossing a link twice consumes double capacity on
    it), and constraint id -> capacity.  Only constraints actually crossed
    by some flow appear.  Shared by the stateless entry point and every
    solve path of :class:`~repro.sim.solver.IncrementalMaxMinSolver`, so
    all of them agree on validation and ordering.
    """
    flow_index = {f.flow_id: i for i, f in enumerate(flows)}
    if len(flow_index) != len(flows):
        raise ValueError("duplicate flow ids passed to solver")

    members: Dict[str, List[int]] = {}
    caps: Dict[str, float] = {}
    for f in flows:
        for link_id in f.links:
            if link_id not in capacities:
                raise KeyError(f"flow {f.flow_id!r} references unknown "
                               f"constraint {link_id!r}")
            members.setdefault(link_id, []).append(flow_index[f.flow_id])
    for link_id in members:
        caps[link_id] = float(capacities[link_id])

    for constraint in extra_constraints:
        cid = constraint.constraint_id
        if cid in caps:
            raise ValueError(f"constraint id {cid!r} collides with a link id")
        if constraint.member_flows is None:
            raise ValueError(
                f"virtual constraint {cid!r} must declare member_flows"
            )
        bound = [flow_index[fid] for fid in constraint.member_flows
                 if fid in flow_index]
        if bound:
            members[cid] = bound
            caps[cid] = float(constraint.capacity)
    return members, caps


def progressive_fill(
    flows: Sequence[FlowDemand],
    members: Mapping[str, List[int]],
    caps: Mapping[str, float],
) -> List[float]:
    """The water-filling core: rates (by flow index) for a built problem.

    This is the scalar *reference* implementation (and the production path
    for small components — see :mod:`repro.sim.arrays` for the vectorized
    core and the size crossover).  Both per-constraint usage *and*
    per-constraint active weight are carried as running totals — usage
    grows with the rates and is debited on demand clamps; active weight is
    debited as member flows freeze — so each round costs one pass over the
    still-active constraints and flows instead of re-summing the whole
    incidence.
    """
    n = len(flows)
    rates = [0.0] * n
    weights = [f.weight for f in flows]
    demands = [f.demand for f in flows]
    frozen = [d <= _ABS_EPSILON for d in demands]
    finite = [math.isfinite(d) for d in demands]
    demand_floor = [d * (1 - _EPSILON) for d in demands]

    # Reverse incidence (flow -> constraints, with crossing multiplicity
    # preserved) so freezing a flow can debit the running totals.
    flow_cids: List[List[str]] = [[] for _ in range(n)]
    for cid, flow_ids in members.items():
        for i in flow_ids:
            flow_cids[i].append(cid)
    used = {cid: 0.0 for cid in members}
    active_weights: Dict[str, float] = {
        cid: sum(weights[i] for i in flow_ids if not frozen[i])
        for cid, flow_ids in members.items()
    }
    cap_floor = {cid: caps[cid] * (1 - _EPSILON) for cid in members}

    def freeze(i: int) -> None:
        frozen[i] = True
        w = weights[i]
        for cid in flow_cids[i]:
            active_weights[cid] -= w

    # Progressive filling.
    for _round in range(2 * (n + len(caps)) + 2):
        active = [i for i in range(n) if not frozen[i]]
        if not active:
            break

        # Growth headroom per constraint: remaining capacity shared over the
        # total weight of unfrozen flows crossing it.  (Plain comparisons —
        # builtin min/max calls are measurable at this loop's temperature.)
        step = math.inf
        for cid, active_weight in active_weights.items():
            if active_weight <= _ABS_EPSILON:
                continue
            headroom = caps[cid] - used[cid]
            if headroom <= 0.0:
                step = 0.0
                break
            candidate = headroom / active_weight
            if candidate < step:
                step = candidate

        # Growth headroom per flow demand.
        for i in active:
            if finite[i]:
                candidate = (demands[i] - rates[i]) / weights[i]
                if candidate < step:
                    step = candidate

        if not math.isfinite(step):
            # No binding constraint at all: unconstrained elastic flows.
            # This only happens for flows with infinite demand crossing no
            # constraints, which is a caller bug.
            raise ValueError("elastic flow with no capacity constraint")

        if step > 0:
            for i in active:
                rates[i] += weights[i] * step
            for cid, active_weight in active_weights.items():
                if active_weight > _ABS_EPSILON:
                    used[cid] += active_weight * step

        # Freeze demand-satisfied flows.
        for i in active:
            if rates[i] + _ABS_EPSILON >= demand_floor[i]:
                overshoot = rates[i] - demands[i]
                if overshoot > 0:
                    rates[i] = demands[i]
                    for cid in flow_cids[i]:
                        used[cid] -= overshoot
                freeze(i)

        # Freeze flows on saturated constraints.  Only constraints with
        # active members can have grown this round; ones saturated from the
        # start (zero capacity) trip on their first round here too.
        for cid, flow_ids in members.items():
            if used[cid] + _ABS_EPSILON >= cap_floor[cid]:
                for i in flow_ids:
                    if not frozen[i]:
                        freeze(i)

    return rates


def max_min_fair_rates(
    flows: Sequence[FlowDemand],
    capacities: Mapping[str, float],
    extra_constraints: Iterable[Constraint] = (),
) -> Dict[str, float]:
    """Compute weighted max-min fair rates (stateless entry point).

    A thin wrapper over :class:`~repro.sim.solver.IncrementalMaxMinSolver`'s
    from-scratch path; callers with churning flow sets should hold a solver
    instance instead and use its mutation API, which re-solves only the
    connected component a change touches.

    Args:
        flows: The active flows.
        capacities: Capacity (bytes/s) per physical link id.  Every link id
            referenced by a flow must be present.
        extra_constraints: Additional constraints (e.g. the arbiter's
            per-tenant-per-link caps).  A constraint with ``member_flows``
            binds only the listed flows *and* only where the flow's link
            set contains the constraint id — virtual ids are matched by
            membership alone.

    Returns:
        Mapping flow id -> allocated rate (bytes/s).  Flows with zero demand
        get rate 0.  A flow crossing a zero-capacity (failed) link gets 0.
    """
    from .solver import IncrementalMaxMinSolver

    return IncrementalMaxMinSolver.solve_once(flows, capacities,
                                              extra_constraints)


def link_utilizations(
    flows: Sequence[FlowDemand],
    rates: Mapping[str, float],
    capacities: Mapping[str, float],
    clamp: bool = True,
) -> Dict[str, float]:
    """Per-link utilization implied by *rates*.

    With ``clamp`` (the default) values are capped at 1.0, matching what a
    dashboard shows.  Diagnostics pass ``clamp=False`` to observe
    oversubscription: rates supplied by callers (measured counters, stale
    caps) may legitimately exceed capacity, and the overshoot magnitude is
    signal.  Links with zero capacity report utilization 1.0 when any flow
    is mapped onto them (they are fully degraded), else 0.0.
    """
    load: Dict[str, float] = {link_id: 0.0 for link_id in capacities}
    for f in flows:
        rate = rates.get(f.flow_id, 0.0)
        for link_id in f.links:
            if link_id in load:
                load[link_id] += rate
    result: Dict[str, float] = {}
    for link_id, cap in capacities.items():
        if cap <= 0:
            result[link_id] = 1.0 if load[link_id] > 0 else 0.0
        else:
            utilization = load[link_id] / cap
            result[link_id] = min(utilization, 1.0) if clamp else utilization
    return result
