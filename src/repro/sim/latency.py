"""Latency model: base propagation plus utilization-dependent queueing.

Small operations (RDMA reads, KV requests, heartbeat probes) are not worth
fluid-modelling as flows; their latency is computed analytically from the
current fabric state:

``latency(path, size) = sum_l base_l * (1 + inflation(rho_l)) + size / avail``

where ``rho_l`` is link *l*'s instantaneous utilization and ``avail`` is the
residual bandwidth at the path bottleneck.  The inflation term is an
M/M/1-style ``alpha * rho / (1 - rho)`` curve, capped so a fully saturated
link yields a large-but-finite latency — matching the measured behaviour
that PCIe/memory-bus congestion inflates tail latency by one to two orders
of magnitude (Agarwal'22, Hostping'23) rather than diverging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..topology.graph import HostTopology
from ..topology.routing import Path


@dataclass
class LatencyModel:
    """Tunable queueing-inflation parameters.

    Attributes:
        alpha: Scale of the queueing term (dimensionless).
        rho_cap: Utilization is clamped to this value before the ``1/(1-rho)``
            pole, bounding worst-case inflation at
            ``alpha * rho_cap / (1 - rho_cap)``.
        min_residual_fraction: Fraction of a link's capacity assumed reachable
            by a small probe even on a saturated link (fair-share floor).
    """

    alpha: float = 1.0
    rho_cap: float = 0.98
    min_residual_fraction: float = 0.02

    def inflation(self, utilization: float) -> float:
        """Multiplicative queueing-delay factor for a link at *utilization*."""
        rho = min(max(utilization, 0.0), self.rho_cap)
        return self.alpha * rho / (1.0 - rho)

    def link_latency(self, base_latency: float, utilization: float) -> float:
        """One-way latency of a link at the given utilization."""
        return base_latency * (1.0 + self.inflation(utilization))

    def path_latency(
        self,
        topology: HostTopology,
        path: Path,
        utilization_of: Callable[[str], float],
        message_size: float = 0.0,
    ) -> float:
        """One-way latency of *message_size* bytes along *path* right now.

        ``utilization_of`` maps a link id to instantaneous utilization in
        [0, 1] (typically ``FabricNetwork.link_utilization``).  Returns
        ``inf`` if any link on the path is down.
        """
        total = 0.0
        residual = float("inf")
        # Hot path: every latency-probe sample lands here, so the
        # inflation/link_latency composition is inlined (identical
        # arithmetic, two fewer calls per hop).
        alpha = self.alpha
        rho_cap = self.rho_cap
        floor_fraction = self.min_residual_fraction
        link_of = topology.link
        for link_id in path.links:
            link = link_of(link_id)
            cap = link.effective_capacity
            if cap <= 0:
                return float("inf")
            rho = utilization_of(link_id)
            clamped = rho
            if clamped < 0.0:
                clamped = 0.0
            if clamped > rho_cap:
                clamped = rho_cap
            total += link.effective_latency * (
                1.0 + alpha * clamped / (1.0 - clamped))
            free = max(cap * (1.0 - rho), cap * floor_fraction)
            if free < residual:
                residual = free
        if message_size > 0:
            if not path.links:
                return total
            total += message_size / residual
        return total

    def round_trip(
        self,
        topology: HostTopology,
        path: Path,
        utilization_of: Callable[[str], float],
        request_size: float = 0.0,
        response_size: float = 0.0,
    ) -> float:
        """Round-trip latency for a request/response over *path* and back."""
        forward = self.path_latency(topology, path, utilization_of, request_size)
        backward = self.path_latency(topology, path, utilization_of, response_size)
        return forward + backward


DEFAULT_LATENCY_MODEL = LatencyModel()
