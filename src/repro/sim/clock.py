"""Simulated clock.

All time in the library is simulated; nothing reads the wall clock.  The
clock only moves forward, in seconds (float).
"""

from __future__ import annotations

from ..errors import ClockError


class SimClock:
    """A monotonically non-decreasing simulated clock."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to time *t*.

        Raises :class:`ClockError` if *t* is in the past.
        """
        if t < self._now:
            raise ClockError(
                f"clock cannot move backwards: now={self._now}, requested={t}"
            )
        self._now = t

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by *dt* seconds (must be >= 0)."""
        if dt < 0:
            raise ClockError(f"cannot advance by negative duration {dt}")
        self._now += dt

    def __repr__(self) -> str:
        return f"SimClock(now={self._now!r})"
