"""Deterministic random-number helpers.

Every stochastic component takes an explicit seed and derives independent
streams from it, so two components never share (and therefore never perturb)
each other's randomness.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def make_rng(seed: int, stream: str = "") -> random.Random:
    """Create an independent ``random.Random`` for (*seed*, *stream*).

    The stream name is hashed into the seed so differently-named streams
    derived from the same base seed are decorrelated but reproducible.
    """
    if stream:
        digest = hashlib.sha256(f"{seed}:{stream}".encode()).digest()
        seed = int.from_bytes(digest[:8], "big")
    return random.Random(seed)


def exponential_interarrivals(rng: random.Random, rate: float) -> Iterator[float]:
    """Yield i.i.d. exponential inter-arrival times for a Poisson process.

    *rate* is events per second and must be positive.
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    while True:
        yield rng.expovariate(rate)


def bounded_normal(rng: random.Random, mean: float, stddev: float,
                   low: float, high: float) -> float:
    """A normal sample clamped into ``[low, high]``."""
    return min(max(rng.gauss(mean, stddev), low), high)
