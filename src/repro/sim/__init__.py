"""Discrete-event simulation core: engine, flows, fair sharing, latency."""

from .arrays import DEFAULT_ARRAY_CROSSOVER, HAVE_NUMPY, progressive_fill_array
from .bandwidth import Constraint, FlowDemand, link_utilizations, max_min_fair_rates
from .clock import SimClock
from .engine import Engine, PeriodicTask
from .events import Event
from .flows import Flow, FlowState
from .latency import DEFAULT_LATENCY_MODEL, LatencyModel
from .network import SYSTEM_TENANT, FabricNetwork
from .rng import bounded_normal, exponential_interarrivals, make_rng
from .solver import IncrementalMaxMinSolver, SolverStats

__all__ = [
    "SimClock",
    "Event",
    "Engine",
    "PeriodicTask",
    "Flow",
    "FlowState",
    "FlowDemand",
    "Constraint",
    "max_min_fair_rates",
    "link_utilizations",
    "progressive_fill_array",
    "HAVE_NUMPY",
    "DEFAULT_ARRAY_CROSSOVER",
    "IncrementalMaxMinSolver",
    "SolverStats",
    "LatencyModel",
    "DEFAULT_LATENCY_MODEL",
    "FabricNetwork",
    "SYSTEM_TENANT",
    "make_rng",
    "exponential_interarrivals",
    "bounded_normal",
]
