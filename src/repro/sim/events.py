"""Event types for the discrete-event engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback, ordered by ``(time, seq)``.

    The sequence number breaks ties deterministically: two events scheduled
    for the same instant fire in scheduling order, which keeps the whole
    simulation reproducible.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    #: Whether the event currently sits in its engine's queue.  Managed by
    #: the engine (set on push, cleared on pop) so a cancel can tell the
    #: engine's live-event accounting apart from cancelling an event whose
    #: callback already fired.
    queued: bool = field(default=False, compare=False, repr=False)
    _engine: Optional[object] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.queued and self._engine is not None:
            self._engine._note_cancelled(self)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        label = f" {self.label!r}" if self.label else ""
        return f"Event(t={self.time:.9f}, seq={self.seq}{label}, {state})"
