"""Event types for the discrete-event engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback, ordered by ``(time, seq)``.

    The sequence number breaks ties deterministically: two events scheduled
    for the same instant fire in scheduling order, which keeps the whole
    simulation reproducible.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        label = f" {self.label!r}" if self.label else ""
        return f"Event(t={self.time:.9f}, seq={self.seq}{label}, {state})"
