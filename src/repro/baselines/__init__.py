"""Baseline isolation policies the paper's manager is compared against."""

from .hostnet_policy import HostnetPolicy, IntentFactory
from .policy import IsolationPolicy, UnmanagedPolicy
from .rdt_like import RdtLikePolicy
from .static_partition import StaticPartitionPolicy

__all__ = [
    "IsolationPolicy",
    "UnmanagedPolicy",
    "StaticPartitionPolicy",
    "RdtLikePolicy",
    "HostnetPolicy",
    "IntentFactory",
]
