"""RDT-like point solution: memory-bus-only throttling.

§2: "Intel RDT technology supports allocating memory bandwidth to different
tenants ... Unfortunately, these features only provide limited point
solutions that mitigate interference from specific components in a
coarse-grained way."  This baseline reproduces that limitation: tenants are
capped on *intra-socket (memory-bus) links only*; PCIe and UPI stay
free-for-all, so interference that bottlenecks there (the paper's RDMA
loopback case) sails straight through.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.network import FabricNetwork
from ..topology.elements import LinkClass
from .policy import IsolationPolicy


class RdtLikePolicy(IsolationPolicy):
    """Equal memory-bus split per tenant; everything else unmanaged."""

    name = "rdt_like"

    def _memory_links(self, network: FabricNetwork):
        """Links RDT-style memory-bandwidth allocation can actually reach:
        intra-socket links with a DIMM endpoint (the memory bus itself, not
        the socket<->root-complex mesh, which MBA cannot throttle)."""
        from ..topology.elements import DeviceType

        topo = network.topology
        for link in topo.links(LinkClass.INTRA_SOCKET):
            ends = (topo.device(link.src).device_type,
                    topo.device(link.dst).device_type)
            if DeviceType.DIMM in ends:
                yield link

    def setup(self, network: FabricNetwork, tenants: Sequence[str]) -> None:
        """Install equal splits on memory-bus links only."""
        if not tenants:
            return
        share = 1.0 / len(tenants)
        for link in self._memory_links(network):
            per_tenant = link.capacity * share
            for tenant in tenants:
                network.set_tenant_link_cap(tenant, link.link_id, per_tenant)

    def teardown(self, network: FabricNetwork,
                 tenants: Sequence[str]) -> None:
        """Remove every installed cap."""
        for tenant in tenants:
            network.clear_tenant_caps(tenant)
