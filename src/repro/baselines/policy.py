"""Common interface for isolation policies (baselines and hostnet).

Benchmarks sweep policies over identical workloads; a policy only decides
what enforcement to install on the fabric for a given tenant set.  The
interface is deliberately tiny: ``setup`` before the workload starts,
``teardown`` after, and a ``name`` for result tables.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.network import FabricNetwork


class IsolationPolicy:
    """Base class: install/remove fabric enforcement for a tenant set."""

    name = "base"

    def setup(self, network: FabricNetwork, tenants: Sequence[str]) -> None:
        """Install enforcement for *tenants* on *network*."""
        raise NotImplementedError

    def teardown(self, network: FabricNetwork,
                 tenants: Sequence[str]) -> None:
        """Remove whatever :meth:`setup` installed."""
        raise NotImplementedError


class UnmanagedPolicy(IsolationPolicy):
    """Today's intra-host network: no enforcement at all (the §2 status quo).

    Every tenant gets whatever max-min fairness hands its *flows* — so a
    tenant that opens more flows simply takes more bandwidth.
    """

    name = "unmanaged"

    def setup(self, network: FabricNetwork, tenants: Sequence[str]) -> None:
        """Nothing to install."""

    def teardown(self, network: FabricNetwork,
                 tenants: Sequence[str]) -> None:
        """Nothing to remove."""
