"""Adapter exposing the full hostnet manager through the policy interface.

Benchmarks sweep ``[unmanaged, static_partition, rdt_like, hostnet]`` over
identical workloads; this adapter lets the real manager participate.  The
caller supplies an *intent factory* describing what guarantees each tenant
should hold (benchmarks know their workloads; the policy does not).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.intents import PerformanceTarget
from ..core.manager import HostNetworkManager
from ..sim.network import FabricNetwork
from .policy import IsolationPolicy

#: Signature of the intent factory: tenant id -> intents for that tenant
#: (empty list means best-effort).
IntentFactory = Callable[[str], List[PerformanceTarget]]


class HostnetPolicy(IsolationPolicy):
    """The paper's proposed manager, as a sweepable policy.

    Args:
        intent_factory: Produces each tenant's intents at setup time.
        work_conserving: Arbiter mode.
        headroom: Admission budget fraction.
        decision_latency: Arbiter enforcement delay (seconds).
    """

    name = "hostnet"

    def __init__(
        self,
        intent_factory: IntentFactory,
        work_conserving: bool = True,
        headroom: float = 0.9,
        decision_latency: float = 10e-6,
    ) -> None:
        self.intent_factory = intent_factory
        self.work_conserving = work_conserving
        self.headroom = headroom
        self.decision_latency = decision_latency
        self.manager: Optional[HostNetworkManager] = None
        self.rejections: Dict[str, str] = {}

    def setup(self, network: FabricNetwork, tenants: Sequence[str]) -> None:
        """Build a manager, register tenants, and submit their intents."""
        from ..errors import HostNetError

        self.manager = HostNetworkManager(
            network,
            headroom=self.headroom,
            work_conserving=self.work_conserving,
            decision_latency=self.decision_latency,
        )
        self.rejections = {}
        for tenant in tenants:
            self.manager.register_tenant(tenant)
            for intent in self.intent_factory(tenant):
                try:
                    self.manager.submit(intent)
                except HostNetError as exc:
                    self.rejections[intent.intent_id] = str(exc)

    def teardown(self, network: FabricNetwork,
                 tenants: Sequence[str]) -> None:
        """Stop the arbiter and lift all enforcement."""
        if self.manager is not None:
            self.manager.shutdown()
            self.manager = None
