"""Static hard partitioning: every link split equally among tenants.

The classic isolation-without-manageability answer: perfect protection,
terrible utilization — a tenant can never use more than ``1/N`` of any link
even when the others are idle.  E2/E6 quantify exactly that loss against
hostnet's work-conserving manager.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.network import FabricNetwork
from .policy import IsolationPolicy


class StaticPartitionPolicy(IsolationPolicy):
    """Cap every tenant at ``capacity / N`` on every link."""

    name = "static_partition"

    def setup(self, network: FabricNetwork, tenants: Sequence[str]) -> None:
        """Install the equal hard split for *tenants* on every link."""
        if not tenants:
            return
        share = 1.0 / len(tenants)
        for link in network.topology.links():
            per_tenant = link.capacity * share
            for tenant in tenants:
                network.set_tenant_link_cap(tenant, link.link_id, per_tenant)

    def teardown(self, network: FabricNetwork,
                 tenants: Sequence[str]) -> None:
        """Remove every installed cap."""
        for tenant in tenants:
            network.clear_tenant_caps(tenant)
