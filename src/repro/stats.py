"""Small statistics helpers used across workloads, monitoring, and benches.

Kept plain Python + math on purpose.  These helpers see small inputs
(telemetry windows of tens to hundreds of samples), and at that size
numpy loses: converting a short Python list to an ndarray plus the
per-call dispatch overhead costs more than the arithmetic it saves — the
same breakeven measured for the solver, where the vectorized
water-filling core in :mod:`repro.sim.arrays` only wins above roughly a
couple dozen flows and the scalar core is kept for small components.
numpy *is* now a hot-path dependency there (large solves vectorize, with
a pure-Python fallback when it is unavailable); these helpers stay
scalar not by policy but because their n never reaches the crossover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def percentile(samples: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile of *samples* (p in [0, 100]).

    Raises ``ValueError`` on an empty sample set — callers must decide what
    an absent measurement means; silently returning 0 hides outages.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0 <= p <= 100:
        raise ValueError(f"p must be in [0, 100], got {p}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    # a + frac*(b-a) is exact when a == b, unlike the two-product form.
    return ordered[low] + frac * (ordered[high] - ordered[low])


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not samples:
        raise ValueError("mean of empty sample set")
    return sum(samples) / len(samples)


def stddev(samples: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two samples."""
    if len(samples) < 2:
        return 0.0
    mu = mean(samples)
    return math.sqrt(sum((x - mu) ** 2 for x in samples) / len(samples))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample set."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for table printing."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarize(samples: Sequence[float]) -> Summary:
    """Build a :class:`Summary`; raises on empty input."""
    if not samples:
        raise ValueError("summarize of empty sample set")
    return Summary(
        count=len(samples),
        mean=mean(samples),
        p50=percentile(samples, 50),
        p95=percentile(samples, 95),
        p99=percentile(samples, 99),
        minimum=min(samples),
        maximum=max(samples),
    )


class EwmaTracker:
    """Exponentially weighted moving average + variance tracker.

    Used by the anomaly detectors: maintains a smoothed mean and a smoothed
    absolute deviation so a z-score can be computed per observation.
    """

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._mean: Optional[float] = None
        self._dev = 0.0
        self.observations = 0

    @property
    def value(self) -> Optional[float]:
        """Current smoothed mean (``None`` before the first observation)."""
        return self._mean

    @property
    def deviation(self) -> float:
        """Current smoothed mean absolute deviation."""
        return self._dev

    def update(self, x: float) -> None:
        """Fold observation *x* into the averages."""
        self.observations += 1
        if self._mean is None:
            self._mean = x
            return
        error = abs(x - self._mean)
        self._mean = (1 - self.alpha) * self._mean + self.alpha * x
        self._dev = (1 - self.alpha) * self._dev + self.alpha * error

    def zscore(self, x: float, floor: float = 1e-12) -> float:
        """Deviation of *x* from the smoothed mean, in deviations.

        Returns 0.0 until a baseline exists.
        """
        if self._mean is None or self.observations < 2:
            return 0.0
        return (x - self._mean) / max(self._dev, floor)


class TimeSeries:
    """An append-only (time, value) series with window queries."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, t: float, value: float) -> None:
        """Append a sample; time must be non-decreasing."""
        if self._times and t < self._times[-1]:
            raise ValueError(
                f"time series {self.name!r}: time went backwards "
                f"({t} < {self._times[-1]})"
            )
        self._times.append(t)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    def last(self) -> Tuple[float, float]:
        """Most recent (time, value); raises on empty series."""
        if not self._values:
            raise ValueError(f"time series {self.name!r} is empty")
        return self._times[-1], self._values[-1]

    def values(self) -> List[float]:
        """All values (copy)."""
        return list(self._values)

    def times(self) -> List[float]:
        """All timestamps (copy)."""
        return list(self._times)

    def window(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Samples with ``start <= t <= end``."""
        return [
            (t, v) for t, v in zip(self._times, self._values)
            if start <= t <= end
        ]

    def items(self) -> Iterable[Tuple[float, float]]:
        """Iterate over (time, value) pairs."""
        return zip(self._times, self._values)
