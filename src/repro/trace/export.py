"""Trace export: Chrome/Perfetto ``trace_event`` JSON and text flamegraphs.

The JSON format is the Trace Event Format consumed by ``ui.perfetto.dev``
and ``chrome://tracing``: a ``traceEvents`` list of phase-tagged dicts.
We emit:

* ``"X"`` (complete) events for spans — ``ts``/``dur`` in microseconds;
* ``"i"`` (instant) events, thread-scoped;
* ``"C"`` (counter) events, one track per counter name;
* ``"M"`` (metadata) events naming the process and thread.

Everything is plain stdlib ``json`` — no dependencies, loadable anywhere.

The text exporter renders the span stream as an indented call tree with
inclusive/self times and hit counts — a flamegraph collapsed onto a
terminal, for environments without a browser.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Mapping, Optional, Tuple, Union

from .recorder import Tracer
from .spans import KIND_COUNTER, KIND_INSTANT, KIND_SPAN, SpanRecord

#: Synthetic pid/tid for the single-process, single-threaded simulator.
_PID = 1
_TID = 1


def _worker_events(widx: int,
                   records: List[tuple]) -> List[Dict[str, Any]]:
    """One fleet worker's raw tracer records as ``trace_event`` dicts.

    Workers fork from the parent after ``TRACER.configure()`` so they
    inherit its epoch (``CLOCK_MONOTONIC`` is process-shared on Linux):
    their timestamps land on the same timeline as the parent's, and each
    worker gets its own process track (pid ``2 + widx``).
    """
    pid = 2 + widx
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": pid, "name": "process_name",
         "args": {"name": f"worker-{widx}"}},
        {"ph": "M", "pid": pid, "tid": _TID, "name": "thread_name",
         "args": {"name": "sim"}},
    ]
    for r in records:
        if r[0] == KIND_SPAN:
            event: Dict[str, Any] = {
                "ph": "X", "pid": pid, "tid": _TID,
                "cat": r[1], "name": r[2],
                "ts": r[3] * 1e6, "dur": r[4] * 1e6,
            }
            if r[7]:
                event["args"] = dict(r[7])
            events.append(event)
        elif r[0] == KIND_INSTANT:
            event = {
                "ph": "i", "s": "t", "pid": pid, "tid": _TID,
                "cat": r[1], "name": r[2], "ts": r[3] * 1e6,
            }
            if r[4]:
                event["args"] = dict(r[4])
            events.append(event)
        elif r[0] == KIND_COUNTER:
            events.append({
                "ph": "C", "pid": pid, "cat": r[1], "name": r[2],
                "ts": r[3] * 1e6, "args": {"value": r[4]},
            })
    return events


def chrome_trace_events(
    tracer: Tracer,
    workers: Optional[Mapping[int, List[tuple]]] = None,
) -> List[Dict[str, Any]]:
    """The tracer's retained records as ``trace_event`` dicts.

    Args:
        tracer: The (parent-process) tracer.
        workers: Optional ``{worker_index: raw_records}`` from a parallel
            fleet (:meth:`repro.fleet.Fleet.worker_traces`); each worker
            is rendered as its own process track.
    """
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": _PID, "name": "process_name",
         "args": {"name": "repro simulator"}},
        {"ph": "M", "pid": _PID, "tid": _TID, "name": "thread_name",
         "args": {"name": "sim"}},
    ]
    for span in tracer.spans():
        event: Dict[str, Any] = {
            "ph": "X",
            "pid": _PID,
            "tid": _TID,
            "cat": span.category,
            "name": span.name,
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    for instant in tracer.instants():
        event = {
            "ph": "i",
            "s": "t",
            "pid": _PID,
            "tid": _TID,
            "cat": instant.category,
            "name": instant.name,
            "ts": instant.time * 1e6,
        }
        if instant.args:
            event["args"] = dict(instant.args)
        events.append(event)
    for sample in tracer.counters():
        events.append({
            "ph": "C",
            "pid": _PID,
            "cat": sample.category,
            "name": sample.track,
            "ts": sample.time * 1e6,
            "args": {"value": sample.value},
        })
    if workers:
        for widx in sorted(workers):
            events.extend(_worker_events(widx, workers[widx]))
    return events


def chrome_trace_dict(
    tracer: Tracer,
    workers: Optional[Mapping[int, List[tuple]]] = None,
) -> Dict[str, Any]:
    """The full JSON-object form (``{"traceEvents": [...], ...}``)."""
    return {
        "traceEvents": chrome_trace_events(tracer, workers=workers),
        "displayTimeUnit": "ms",
        "otherData": {
            "recorded": tracer.records_recorded,
            "dropped": tracer.dropped_records,
        },
    }


def write_chrome_trace(
    tracer: Tracer,
    destination: Union[str, IO[str]],
    workers: Optional[Mapping[int, List[tuple]]] = None,
) -> int:
    """Write the Perfetto-loadable JSON to a path or open text file.

    Returns the number of trace events written (metadata included).
    """
    payload = chrome_trace_dict(tracer, workers=workers)
    if hasattr(destination, "write"):
        json.dump(payload, destination)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
    return len(payload["traceEvents"])


# -- text flamegraph ---------------------------------------------------------


class _Node:
    __slots__ = ("total", "self_time", "count", "children")

    def __init__(self) -> None:
        self.total = 0.0
        self.self_time = 0.0
        self.count = 0
        self.children: Dict[Tuple[str, str], "_Node"] = {}


def _build_tree(spans: List[SpanRecord]) -> _Node:
    """Fold the span stream into an aggregated call tree.

    Spans are recorded at completion, so stream order is post-order;
    re-nesting uses interval containment over start/end times instead
    (sort by start, pop ancestors that ended before the next span starts).
    """
    root = _Node()
    stack: List[Tuple[SpanRecord, _Node]] = []
    # A small epsilon absorbs float jitter between a child's end and its
    # parent's end (both derive from the same clock reads).
    eps = 1e-12
    for span in sorted(spans, key=lambda s: (s.start, -s.duration)):
        while stack and span.start >= stack[-1][0].end - eps:
            stack.pop()
        parent = stack[-1][1] if stack else root
        key = (span.category, span.name)
        node = parent.children.get(key)
        if node is None:
            node = parent.children[key] = _Node()
        node.total += span.duration
        node.self_time += span.self_time
        node.count += 1
        stack.append((span, node))
    return root


def flame_summary(tracer: Tracer, max_depth: int = 6,
                  min_fraction: float = 0.001) -> str:
    """Indented call-tree summary of where wall-clock time went.

    Args:
        tracer: Source of spans.
        max_depth: Deepest tree level rendered.
        min_fraction: Branches below this share of total traced time are
            folded away (keeps event-per-dispatch noise out).
    """
    spans = tracer.spans()
    if not spans:
        return "(no spans recorded)"
    root = _build_tree(spans)
    grand_total = sum(node.total for node in root.children.values())
    if grand_total <= 0:
        return "(no measurable span time)"
    lines = [f"traced wall time: {grand_total * 1e3:.3f} ms "
             f"across {len(spans)} spans"]

    def emit(node: _Node, label: Tuple[str, str], depth: int) -> None:
        share = node.total / grand_total
        if share < min_fraction or depth > max_depth:
            return
        category, name = label
        lines.append(
            f"{'  ' * depth}{share * 100:5.1f}%  {category}:{name}  "
            f"(n={node.count}, total={node.total * 1e3:.3f}ms, "
            f"self={node.self_time * 1e3:.3f}ms)"
        )
        ordered = sorted(node.children.items(),
                         key=lambda item: item[1].total, reverse=True)
        for child_label, child in ordered:
            emit(child, child_label, depth + 1)

    top = sorted(root.children.items(), key=lambda item: item[1].total,
                 reverse=True)
    for label, node in top:
        emit(node, label, 0)
    return "\n".join(lines)
