"""``repro.trace`` — always-on tracing & profiling of the simulator itself.

Distinct from :mod:`repro.telemetry`, which *models* in-fabric hardware
counters as part of the reproduction: this package instruments the
reproduction's own hot paths (engine dispatch, solver re-solves, arbiter
rounds, monitor probes) so a slow run can be explained, not guessed at.

Three pieces:

* :mod:`~repro.trace.recorder` — the process-wide :data:`TRACER`
  (nestable spans, instant events, counter tracks) over a bounded ring
  buffer, with a disabled fast path cheap enough to leave compiled in;
* :mod:`~repro.trace.export` — Chrome/Perfetto ``trace_event`` JSON
  (loadable in ``ui.perfetto.dev``) and a text flamegraph;
* :mod:`~repro.trace.profile` — flat per-span-kind aggregates
  (count, total/self time, p50/p99).

Entry points: ``Host(topology, trace=True)``, the
``python -m repro trace <scenario>`` CLI, or :func:`start_tracing`.
"""

from .export import (
    chrome_trace_dict,
    chrome_trace_events,
    flame_summary,
    write_chrome_trace,
)
from .profile import (
    SpanStats,
    category_totals,
    profile,
    profile_spans,
    render_profile,
)
from .recorder import (
    TRACER,
    TraceConfig,
    Tracer,
    get_tracer,
    start_tracing,
    stop_tracing,
    tracing,
)
from .spans import (
    CAT_ARBITER,
    CAT_ENGINE,
    CAT_MANAGER,
    CAT_MONITOR,
    CAT_NETWORK,
    CAT_SOLVER,
    CAT_TELEMETRY,
    CounterRecord,
    InstantRecord,
    SpanRecord,
)

__all__ = [
    # recorder
    "TRACER",
    "Tracer",
    "TraceConfig",
    "get_tracer",
    "start_tracing",
    "stop_tracing",
    "tracing",
    # records
    "SpanRecord",
    "InstantRecord",
    "CounterRecord",
    "CAT_ENGINE",
    "CAT_SOLVER",
    "CAT_NETWORK",
    "CAT_ARBITER",
    "CAT_MANAGER",
    "CAT_MONITOR",
    "CAT_TELEMETRY",
    # export
    "chrome_trace_events",
    "chrome_trace_dict",
    "write_chrome_trace",
    "flame_summary",
    # profile
    "SpanStats",
    "profile",
    "profile_spans",
    "category_totals",
    "render_profile",
]
