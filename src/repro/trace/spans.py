"""Trace record types: spans, instants, and counter samples.

The recorder (:mod:`repro.trace.recorder`) stores raw tuples in its ring
buffer for speed; these dataclasses are the *materialized* view handed to
exporters, the profiler, and tests.  All timestamps are wall-clock seconds
relative to the tracer's start (``time.perf_counter`` deltas) — the trace
subsystem profiles the simulator's own execution cost, not simulated time.
Spans that want to correlate with simulated time carry it in ``args``
(conventionally under the key ``"t"``).

Record kinds mirror the Chrome ``trace_event`` phases we export:

* ``SpanRecord`` — a completed duration ("X" phase): one nestable unit of
  work with total and *self* time (total minus time spent in child spans);
* ``InstantRecord`` — a point event ("i" phase): batch flushes, coalesced
  re-solve firings, admission rejections;
* ``CounterRecord`` — one sample on a counter track ("C" phase): engine
  queue depth, active flow count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Well-known categories used by the built-in instrumentation.  Categories
#: are open-ended — these constants just keep the hook sites consistent.
CAT_ENGINE = "engine"
CAT_SOLVER = "solver"
CAT_NETWORK = "network"
CAT_ARBITER = "arbiter"
CAT_MANAGER = "manager"
CAT_MONITOR = "monitor"
CAT_TELEMETRY = "telemetry"
CAT_RECOVERY = "recovery"  # closed-loop failure recovery (replace/degrade)
CAT_ADMISSION = "admission"  # retry queue parking/retries/shedding
CAT_FLEET = "fleet"  # cluster-level schedule/migrate/rebalance decisions

#: Ring-buffer kind tags (first tuple element; match trace_event phases).
KIND_SPAN = "X"
KIND_INSTANT = "I"
KIND_COUNTER = "C"


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    Attributes:
        category: Instrumentation category (e.g. ``"engine"``).
        name: Span name (e.g. ``"solve"``, an event label).
        start: Start time in seconds since the tracer started.
        duration: Wall-clock total duration in seconds.
        self_time: Duration minus time spent inside child spans.
        depth: Nesting depth at entry (0 = top level).
        args: Optional key/value annotations (tenant, dirty counts, ...).
    """

    category: str
    name: str
    start: float
    duration: float
    self_time: float
    depth: int
    args: Optional[Dict[str, Any]] = field(default=None)

    @property
    def end(self) -> float:
        """Span end time in seconds since the tracer started."""
        return self.start + self.duration


@dataclass(frozen=True)
class InstantRecord:
    """A point-in-time event (no duration)."""

    category: str
    name: str
    time: float
    args: Optional[Dict[str, Any]] = field(default=None)


@dataclass(frozen=True)
class CounterRecord:
    """One sample on a named counter track."""

    category: str
    track: str
    time: float
    value: float
