"""Aggregate profiling statistics over the recorded span stream.

Where :func:`repro.trace.export.flame_summary` answers "*where* does the
time go" (tree-shaped), this module answers "*what* is expensive"
(flat, per span kind): count, total/self time, mean, p50/p99/max — the
numbers a perf PR quotes before and after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..stats import percentile
from .recorder import Tracer
from .spans import SpanRecord


@dataclass(frozen=True)
class SpanStats:
    """Aggregate cost of one (category, name) span kind.

    Durations are wall-clock seconds; ``self_total`` excludes time spent
    in child spans, so summing ``self_total`` across kinds never double
    counts nested work.
    """

    category: str
    name: str
    count: int
    total: float
    self_total: float
    mean: float
    p50: float
    p99: float
    max: float


def profile_spans(
    spans: Iterable[SpanRecord],
) -> Dict[Tuple[str, str], SpanStats]:
    """Per-(category, name) aggregates over *spans*."""
    durations: Dict[Tuple[str, str], List[float]] = {}
    self_totals: Dict[Tuple[str, str], float] = {}
    for span in spans:
        key = (span.category, span.name)
        durations.setdefault(key, []).append(span.duration)
        self_totals[key] = self_totals.get(key, 0.0) + span.self_time
    result: Dict[Tuple[str, str], SpanStats] = {}
    for key, values in durations.items():
        total = sum(values)
        result[key] = SpanStats(
            category=key[0],
            name=key[1],
            count=len(values),
            total=total,
            self_total=self_totals[key],
            mean=total / len(values),
            p50=percentile(values, 50),
            p99=percentile(values, 99),
            max=max(values),
        )
    return result


def profile(tracer: Tracer) -> Dict[Tuple[str, str], SpanStats]:
    """Per-(category, name) aggregates over the tracer's retained spans."""
    return profile_spans(tracer.spans())


def category_totals(tracer: Tracer) -> Dict[str, float]:
    """Self-time per category (sums to total traced time, no overlap)."""
    totals: Dict[str, float] = {}
    for span in tracer.spans():
        totals[span.category] = totals.get(span.category, 0.0) + span.self_time
    return totals


def render_profile(stats: Dict[Tuple[str, str], SpanStats],
                   limit: int = 15) -> str:
    """Fixed-width table of the *limit* most expensive span kinds."""
    if not stats:
        return "(no spans recorded)"
    rows = sorted(stats.values(), key=lambda s: s.self_total, reverse=True)
    lines = [
        f"{'category:name':<34} {'count':>7} {'total':>10} {'self':>10} "
        f"{'p50':>9} {'p99':>9}"
    ]
    for row in rows[:limit]:
        label = f"{row.category}:{row.name}"
        if len(label) > 34:
            label = label[:31] + "..."
        lines.append(
            f"{label:<34} {row.count:>7} {row.total * 1e3:>8.3f}ms "
            f"{row.self_total * 1e3:>8.3f}ms {row.p50 * 1e6:>7.1f}us "
            f"{row.p99 * 1e6:>7.1f}us"
        )
    if len(rows) > limit:
        lines.append(f"... and {len(rows) - limit} more span kinds")
    return "\n".join(lines)
