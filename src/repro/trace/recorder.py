"""The process-wide :class:`Tracer`: bounded-ring span/event recording.

Design constraints (in priority order):

1. **Disabled ⇒ near-zero overhead.**  Instrumentation sites in the hot
   layers guard every call with ``if TRACER.enabled:`` — a single
   attribute load and branch.  The tracer is a process-wide singleton
   (:data:`TRACER`) that is *reconfigured in place*, never replaced, so
   hook sites may bind it once at import time and the guard stays valid
   for the life of the process.
2. **O(1) append, hard memory bound.**  Records land in a
   ``collections.deque(maxlen=capacity)`` ring: appending is O(1) and the
   oldest records fall off first, so an always-on tracer can never grow
   without bound (mirroring the kernel's trace ring buffers).
3. **Nestable spans with self-time.**  Spans track an explicit stack;
   each frame accumulates its children's durations so the recorded span
   carries both total and *self* time, which is what the flamegraph-style
   summary and the profiler aggregate.

Typical use::

    from repro.trace import TRACER, start_tracing, stop_tracing

    start_tracing()            # or Host(topology, trace=True)
    ... run the simulation ...
    stop_tracing()
    print(TRACER.summary())    # or export.write_chrome_trace(TRACER, path)
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Set

from .spans import (
    KIND_COUNTER,
    KIND_INSTANT,
    KIND_SPAN,
    CounterRecord,
    InstantRecord,
    SpanRecord,
)


@dataclass(frozen=True)
class TraceConfig:
    """Tracer configuration.

    Attributes:
        capacity: Ring-buffer size in records; the oldest records are
            evicted first once full.
        categories: When given, only these categories are recorded
            (spans in filtered-out categories still nest correctly —
            their time is attributed to the enclosing recorded span).
    """

    capacity: int = 262_144
    categories: Optional[Set[str]] = None

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {self.capacity}")


class _SpanContext:
    """Context manager wrapping ``Tracer.begin``/``Tracer.end``.

    A fresh tiny object per ``with tracer.span(...)`` block; the engine's
    per-event hot path calls ``begin``/``end`` directly instead.
    """

    __slots__ = ("_tracer", "_category", "_name", "_args")

    def __init__(self, tracer: "Tracer", category: str, name: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self._category = category
        self._name = name
        self._args = args

    def __enter__(self) -> "Tracer":
        self._tracer.begin(self._category, self._name, self._args)
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.end()


class _NullSpanContext:
    """Shared no-op context returned by ``span()`` while disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpanContext()


class Tracer:
    """Nestable span / instant-event / counter-track recorder.

    All methods are cheap no-ops while ``enabled`` is ``False``; hot-path
    callers should still guard with ``if tracer.enabled:`` to skip
    argument construction entirely.
    """

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        self.enabled: bool = False
        self._config = config or TraceConfig()
        self._clock = time.perf_counter
        self._t0 = 0.0
        self._buffer: Deque[tuple] = deque(maxlen=self._config.capacity)
        # Span stack frames: [category, name, args, start, child_time, skip]
        self._stack: List[list] = []
        self.dropped_records = 0  # evictions forced by the ring bound
        self._recorded = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def config(self) -> TraceConfig:
        """The active configuration."""
        return self._config

    def configure(self, config: Optional[TraceConfig] = None) -> None:
        """Replace the configuration and clear recorded state."""
        self._config = config or TraceConfig()
        self.clear()

    def enable(self) -> None:
        """Start recording (idempotent); the ring keeps prior records."""
        if not self.enabled:
            if self._recorded == 0:
                self._t0 = self._clock()
            self.enabled = True

    def disable(self) -> None:
        """Stop recording; open spans are abandoned unrecorded."""
        self.enabled = False
        self._stack.clear()

    def clear(self) -> None:
        """Drop every recorded event and reset the clock origin."""
        self._buffer = deque(maxlen=self._config.capacity)
        self._stack.clear()
        self.dropped_records = 0
        self._recorded = 0
        self._t0 = self._clock()

    # -- recording -----------------------------------------------------------

    def begin(self, category: str, name: str,
              args: Optional[Dict[str, Any]] = None) -> None:
        """Open a span; must be balanced by exactly one :meth:`end`."""
        if not self.enabled:
            return
        cats = self._config.categories
        skip = cats is not None and category not in cats
        self._stack.append(
            [category, name, args, self._clock() - self._t0, 0.0, skip]
        )

    def end(self) -> None:
        """Close the innermost open span and record it."""
        if not self.enabled or not self._stack:
            return
        category, name, args, start, child_time, skip = self._stack.pop()
        duration = (self._clock() - self._t0) - start
        if self._stack:
            self._stack[-1][4] += duration
        if skip:
            return
        self._append(
            (KIND_SPAN, category, name, start, duration,
             duration - child_time, len(self._stack), args)
        )

    def span(self, category: str, name: str,
             args: Optional[Dict[str, Any]] = None):
        """``with``-style span (see :meth:`begin` / :meth:`end`)."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, category, name, args)

    def annotate(self, **kwargs: Any) -> None:
        """Merge *kwargs* into the innermost open span's args.

        Lets a hook site record outcomes it only knows at the end of the
        work (e.g. how many components the solver actually re-solved).
        """
        if not self.enabled or not self._stack:
            return
        frame = self._stack[-1]
        if frame[2] is None:
            frame[2] = dict(kwargs)
        else:
            frame[2].update(kwargs)

    def instant(self, category: str, name: str,
                args: Optional[Dict[str, Any]] = None) -> None:
        """Record a point-in-time event."""
        if not self.enabled:
            return
        cats = self._config.categories
        if cats is not None and category not in cats:
            return
        self._append(
            (KIND_INSTANT, category, name, self._clock() - self._t0, args)
        )

    def counter(self, category: str, track: str, value: float) -> None:
        """Record one sample on counter track *track*."""
        if not self.enabled:
            return
        cats = self._config.categories
        if cats is not None and category not in cats:
            return
        self._append(
            (KIND_COUNTER, category, track, self._clock() - self._t0,
             value)
        )

    def _append(self, record: tuple) -> None:
        if len(self._buffer) == self._config.capacity:
            self.dropped_records += 1
        self._buffer.append(record)
        self._recorded += 1

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def records_recorded(self) -> int:
        """Total records ever appended (including evicted ones)."""
        return self._recorded

    def raw_records(self) -> List[tuple]:
        """Snapshot of the raw ring contents (oldest first)."""
        return list(self._buffer)

    def spans(self) -> List[SpanRecord]:
        """All retained spans, materialized, in completion order."""
        return [
            SpanRecord(category=r[1], name=r[2], start=r[3], duration=r[4],
                       self_time=r[5], depth=r[6], args=r[7])
            for r in self._buffer if r[0] == KIND_SPAN
        ]

    def instants(self) -> List[InstantRecord]:
        """All retained instant events, materialized."""
        return [
            InstantRecord(category=r[1], name=r[2], time=r[3], args=r[4])
            for r in self._buffer if r[0] == KIND_INSTANT
        ]

    def counters(self) -> List[CounterRecord]:
        """All retained counter samples, materialized."""
        return [
            CounterRecord(category=r[1], track=r[2], time=r[3], value=r[4])
            for r in self._buffer if r[0] == KIND_COUNTER
        ]

    def categories(self) -> Set[str]:
        """Distinct categories present in the retained records."""
        return {r[1] for r in self._buffer}

    def summary(self, limit: int = 15) -> str:
        """Short human-readable per-(category, name) cost table."""
        from .profile import profile_spans, render_profile

        return render_profile(profile_spans(self.spans()), limit=limit)

    def __repr__(self) -> str:
        return (f"Tracer(enabled={self.enabled}, records={len(self)}, "
                f"capacity={self._config.capacity}, "
                f"dropped={self.dropped_records})")


#: The process-wide tracer.  Instrumentation sites bind this object once
#: at import time and guard on ``TRACER.enabled``; it is reconfigured in
#: place (never rebound) so those cached references stay live.
TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer instance."""
    return TRACER


def start_tracing(config: Optional[TraceConfig] = None) -> Tracer:
    """Configure (when *config* is given) and enable the global tracer."""
    if config is not None:
        TRACER.configure(config)
    TRACER.enable()
    return TRACER


def stop_tracing() -> Tracer:
    """Disable the global tracer; recorded events stay readable."""
    TRACER.disable()
    return TRACER


class tracing:
    """Context manager: trace a block against the global tracer.

    ::

        with tracing() as tracer:
            host.run_until(1.0)
        tracer.summary()
    """

    def __init__(self, config: Optional[TraceConfig] = None,
                 clear: bool = True) -> None:
        self._config = config
        self._clear = clear

    def __enter__(self) -> Tracer:
        if self._config is not None:
            TRACER.configure(self._config)
        elif self._clear:
            TRACER.clear()
        TRACER.enable()
        return TRACER

    def __exit__(self, exc_type, exc, tb) -> None:
        TRACER.disable()
